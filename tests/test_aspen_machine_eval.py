"""Tests for machine-model semantics and the evaluator on synthetic models."""

from __future__ import annotations

import pytest

from repro.aspen import ApplicationModel, AspenEvaluator, MachineModel, ModelRegistry, parse_source
from repro.exceptions import AspenEvaluationError, AspenNameError

MACHINE_SRC = """
machine TestBox { [1] N nodes }
node N { [1] S sockets }
socket S {
  [2] C cores
  M memory
  linked with L
}
core C {
  param hz = 1e9
  resource flops(number) [number / hz]
    with sp [ base ], dp [ base * 2 ], simd [ base / 4 ], fmad [ base / 2 ]
}
memory M {
  param bw = 1e9
  property capacity [100]
  resource loads(bytes) [bytes / bw]
  resource stores(bytes) [bytes / bw]
}
interconnect L {
  resource intracomm(bytes) [1e-6 + bytes / 2e9]
}
"""


@pytest.fixture(scope="module")
def machine() -> MachineModel:
    reg = ModelRegistry()
    reg.load_text(MACHINE_SRC)
    return reg.machine("TestBox")


def app_from(src: str) -> ApplicationModel:
    return ApplicationModel(parse_source(src).models[0])


class TestMachineModel:
    def test_socket_discovery(self, machine):
        assert machine.socket_names() == ["S"]

    def test_socket_view_components(self, machine):
        view = machine.socket("S")
        assert view.cores[0][0] == 2.0
        assert view.memory.name == "M"
        assert view.link.name == "L"

    def test_unknown_socket(self, machine):
        with pytest.raises(AspenNameError, match="no socket"):
            machine.socket("nope")

    def test_resource_lookup_order(self, machine):
        view = machine.socket("S")
        assert view.find_resource("flops").component.name == "C"
        assert view.find_resource("loads").component.name == "M"
        assert view.find_resource("intracomm").component.name == "L"
        assert view.find_resource("bogus") is None

    def test_resource_cost_with_traits(self, machine):
        view = machine.socket("S")
        lookup = view.find_resource("flops")
        base, unmatched = lookup.time_seconds(1e9, [])
        assert base == pytest.approx(1.0)
        assert unmatched == set()
        simd, _ = lookup.time_seconds(1e9, ["sp", "simd"])
        assert simd == pytest.approx(0.25)
        both, _ = lookup.time_seconds(1e9, ["simd", "fmad"])
        assert both == pytest.approx(0.125)
        dp, _ = lookup.time_seconds(1e9, ["dp"])
        assert dp == pytest.approx(2.0)

    def test_unmatched_trait_reported(self, machine):
        view = machine.socket("S")
        _, unmatched = view.find_resource("flops").time_seconds(1.0, ["vectorish"])
        assert unmatched == {"vectorish"}

    def test_property_value(self, machine):
        view = machine.socket("S")
        assert view.property_value(view.memory, "capacity") == 100.0
        assert view.property_value(view.memory, "nope") is None


class TestEvaluator:
    def test_simple_block(self, machine):
        app = app_from(
            "model A { kernel main { execute [1] { flops [2e9] } } }"
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(2.0)

    def test_count_multiplier(self, machine):
        app = app_from(
            "model A { kernel main { execute [3] { flops [1e9] } } }"
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(3.0)

    def test_time_units(self, machine):
        app = app_from(
            "model A { kernel main { execute [1] "
            "{ microseconds [5] milliseconds [2] seconds [1] } } }"
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(1.002005)

    def test_conflict_policies(self, machine):
        src = "model A { kernel main { execute [1] { flops [1e9] loads [5e8] } } }"
        app = app_from(src)
        assert AspenEvaluator(machine, conflict="sum").evaluate(
            app, socket="S"
        ).total_seconds == pytest.approx(1.5)
        assert AspenEvaluator(machine, conflict="max").evaluate(
            app, socket="S"
        ).total_seconds == pytest.approx(1.0)

    def test_bad_conflict_policy(self, machine):
        with pytest.raises(AspenEvaluationError):
            AspenEvaluator(machine, conflict="mean")

    def test_kernel_calls_and_iterate(self, machine):
        app = app_from(
            """
            model A {
              kernel work { execute [1] { seconds [2] } }
              kernel main { work iterate [3] { work } }
            }
            """
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(8.0)

    def test_par_takes_max_seq_takes_sum(self, machine):
        app = app_from(
            """
            model A {
              kernel fast { execute [1] { seconds [1] } }
              kernel slow { execute [1] { seconds [5] } }
              kernel main { par { fast slow } seq { fast slow } }
            }
            """
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(5.0 + 6.0)

    def test_recursion_detected(self, machine):
        app = app_from(
            "model A { kernel main { main } }"
        )
        with pytest.raises(AspenEvaluationError, match="recursive"):
            AspenEvaluator(machine).evaluate(app, socket="S")

    def test_unknown_resource(self, machine):
        app = app_from("model A { kernel main { execute [1] { teraflops [1] } } }")
        with pytest.raises(AspenNameError, match="teraflops"):
            AspenEvaluator(machine).evaluate(app, socket="S")

    def test_unknown_data_target(self, machine):
        app = app_from(
            "model A { kernel main { execute [1] { loads [4] from Nope } } }"
        )
        with pytest.raises(AspenNameError, match="Nope"):
            AspenEvaluator(machine).evaluate(app, socket="S")

    def test_of_size_multiplies(self, machine):
        app = app_from(
            """
            model A {
              data D as Array(10, 4)
              kernel main { execute [1] { loads [10] from D of size [4] } }
            }
            """
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert r.total_seconds == pytest.approx(40 / 1e9)

    def test_param_overrides(self, machine):
        app = app_from(
            "model A { param X = 1 kernel main { execute [1] { flops [X * 1e9] } } }"
        )
        ev = AspenEvaluator(machine)
        assert ev.evaluate(app, socket="S").total_seconds == pytest.approx(1.0)
        assert ev.evaluate(app, socket="S", params={"X": 4}).total_seconds == pytest.approx(4.0)

    def test_capacity_warning(self, machine):
        app = app_from(
            """
            model A {
              data Big as Array(1000, 8)
              kernel main { execute [1] { flops [1] } }
            }
            """
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert any("capacity" in w for w in r.warnings)

    def test_unmatched_trait_warning(self, machine):
        app = app_from(
            "model A { kernel main { execute [1] { flops [1] as turbo } } }"
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        assert any("turbo" in w for w in r.warnings)

    def test_report_breakdowns(self, machine):
        app = app_from(
            """
            model A {
              kernel k1 { execute [1] { flops [1e9] } }
              kernel k2 { execute [1] { loads [2e9] } }
              kernel main { k1 k2 }
            }
            """
        )
        r = AspenEvaluator(machine).evaluate(app, socket="S")
        per_kernel = r.per_kernel()
        assert per_kernel["k1"] == pytest.approx(1.0)
        assert per_kernel["k2"] == pytest.approx(2.0)
        assert r.per_resource()["loads"] == pytest.approx(2.0)
        assert r.dominant_resource() == "loads"

    def test_negative_iterate_rejected(self, machine):
        app = app_from(
            "model A { kernel main { iterate [0-5] { execute [1] { seconds [1] } } } }"
        )
        with pytest.raises(AspenEvaluationError, match="negative"):
            AspenEvaluator(machine).evaluate(app, socket="S")
