"""Tests for the workload generators: each reduction encodes its objective."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.qubo import (
    brute_force_ising,
    brute_force_qubo,
    graph_coloring_qubo,
    max_independent_set_qubo,
    maxcut_qubo,
    min_vertex_cover_qubo,
    number_partitioning_ising,
    random_ising,
    random_qubo,
    set_packing_qubo,
    weighted_max2sat_qubo,
)


class TestRandom:
    def test_random_qubo_complete(self):
        q = random_qubo(6, density=1.0, rng=0)
        assert q.num_interactions == 15

    def test_random_qubo_reproducible(self):
        assert random_qubo(5, rng=42) == random_qubo(5, rng=42)

    def test_random_qubo_density_zero(self):
        assert random_qubo(5, density=0.0, rng=0).num_interactions == 0

    def test_bad_density(self):
        with pytest.raises(ValidationError):
            random_qubo(3, density=1.5)
        with pytest.raises(ValidationError):
            random_ising(3, density=-0.1)

    def test_random_ising_scales(self):
        m = random_ising(8, rng=1, h_scale=0.5, j_scale=2.0)
        assert m.max_abs_h <= 0.5
        assert m.max_abs_j <= 2.0


class TestMaxCut:
    def test_path_graph(self):
        # P4 max cut = 3 (alternating partition).
        q = maxcut_qubo(nx.path_graph(4))
        _, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-3.0)

    def test_complete_graph(self):
        # K4 max cut = 4 (2-2 split).
        q = maxcut_qubo(nx.complete_graph(4))
        _, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-4.0)

    def test_weighted(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=5.0)
        g.add_edge(1, 2, weight=1.0)
        q = maxcut_qubo(g)
        _, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-6.0)  # both edges cuttable

    def test_requires_canonical_labels(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValidationError, match="range"):
            maxcut_qubo(g)


class TestIndependentSetAndCover:
    def test_mis_on_cycle(self):
        # C5 has maximum independent set of size 2.
        q = max_independent_set_qubo(nx.cycle_graph(5))
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-2.0)
        chosen = np.flatnonzero(s[0])
        for u, v in nx.cycle_graph(5).edges():
            assert not (u in chosen and v in chosen)

    def test_mis_penalty_guard(self):
        with pytest.raises(ValidationError):
            max_independent_set_qubo(nx.path_graph(3), penalty=1.0)

    def test_vertex_cover_on_star(self):
        # Star K_{1,4}: minimum vertex cover is the center, size 1.
        q = min_vertex_cover_qubo(nx.star_graph(4))
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(1.0)
        assert s[0][0] == 1  # the hub

    def test_cover_complement_of_mis(self):
        g = nx.cycle_graph(6)
        _, e_mis = brute_force_qubo(max_independent_set_qubo(g))
        _, e_vc = brute_force_qubo(min_vertex_cover_qubo(g))
        # |MIS| + |MVC| = n (Gallai identity).
        assert -e_mis[0] + e_vc[0] == pytest.approx(6.0)


class TestNumberPartitioning:
    def test_perfect_partition(self):
        m = number_partitioning_ising([1, 2, 3])  # {1,2} vs {3}
        _, e = brute_force_ising(m)
        assert e[0] == pytest.approx(0.0)

    def test_imperfect_partition_residual(self):
        m = number_partitioning_ising([3, 1, 1])  # best residual = 1
        _, e = brute_force_ising(m)
        assert e[0] == pytest.approx(1.0)

    def test_energy_is_square_of_signed_sum(self, rng):
        vals = rng.integers(1, 10, size=6).astype(float)
        m = number_partitioning_ising(vals)
        s = rng.integers(0, 2, size=6) * 2 - 1
        assert m.energy(s) == pytest.approx(float(np.dot(vals, s)) ** 2)


class TestMax2Sat:
    def test_satisfiable_formula(self):
        # (x1 or x2) and (not x1 or x2) and (x1 or not x2): sat with x1=x2=1.
        q = weighted_max2sat_qubo([(1, 2), (-1, 2), (1, -2)])
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(0.0)
        assert s[0].tolist() == [1, 1]

    def test_unsatisfiable_pair(self):
        # (x1) and (not x1): exactly one clause must fail.
        q = weighted_max2sat_qubo([(1,), (-1,)])
        _, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(1.0)

    def test_weights_respected(self):
        # Prefer violating the cheap clause.
        q = weighted_max2sat_qubo([(1,), (-1,)], weights=[10.0, 1.0])
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(1.0)
        assert s[0][0] == 1  # keeps the weight-10 clause satisfied

    def test_energy_counts_violations(self, rng):
        clauses = [(1, 2), (-2, 3), (-1, -3), (2,)]
        q = weighted_max2sat_qubo(clauses)
        for _ in range(10):
            b = rng.integers(0, 2, size=3)
            expected = 0
            assign = {i + 1: bool(b[i]) for i in range(3)}
            for c in clauses:
                sat = any((lit > 0) == assign[abs(lit)] for lit in c)
                expected += 0 if sat else 1
            assert q.energy(b) == pytest.approx(expected)

    def test_tautology_ignored(self):
        q = weighted_max2sat_qubo([(1, -1)])
        assert q.energy([0]) == pytest.approx(0.0)
        assert q.energy([1]) == pytest.approx(0.0)

    def test_bad_clause(self):
        with pytest.raises(ValidationError):
            weighted_max2sat_qubo([(0, 1)])
        with pytest.raises(ValidationError):
            weighted_max2sat_qubo([(1, 2, 3)])


class TestColoring:
    def test_triangle_3colorable(self):
        q = graph_coloring_qubo(nx.complete_graph(3), num_colors=3)
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(0.0)
        cols = s[0].reshape(3, 3)
        assert (cols.sum(axis=1) == 1).all()  # one-hot
        chosen = cols.argmax(axis=1)
        assert len(set(chosen)) == 3  # all distinct on K3

    def test_triangle_not_2colorable(self):
        q = graph_coloring_qubo(nx.complete_graph(3), num_colors=2)
        _, e = brute_force_qubo(q)
        assert e[0] > 0.0

    def test_bad_color_count(self):
        with pytest.raises(ValidationError):
            graph_coloring_qubo(nx.path_graph(2), num_colors=0)


class TestSetPacking:
    def test_disjoint_sets_all_chosen(self):
        q = set_packing_qubo([{0, 1}, {2, 3}, {4}])
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-3.0)
        assert s[0].tolist() == [1, 1, 1]

    def test_overlap_forces_choice(self):
        q = set_packing_qubo([{0, 1}, {1, 2}], weights=[1.0, 2.0])
        s, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(-2.0)
        assert s[0].tolist() == [0, 1]

    def test_weight_shape_checked(self):
        with pytest.raises(ValidationError):
            set_packing_qubo([{0}], weights=[1.0, 2.0])
