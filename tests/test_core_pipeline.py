"""Tests for the composed SplitExecutionModel pipeline."""

from __future__ import annotations

import pytest

from repro.core import SplitExecutionModel, Stage2Model
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def model() -> SplitExecutionModel:
    return SplitExecutionModel()


class TestTimeToSolution:
    def test_totals_compose(self, model):
        t = model.time_to_solution(50)
        assert t.total_seconds == pytest.approx(
            t.stage1_seconds + t.stage2_seconds + t.stage3_seconds
        )

    def test_stage1_dominates(self, model):
        """The paper's conclusion at every evaluated size."""
        for lps in (5, 10, 30, 50, 100):
            t = model.time_to_solution(lps)
            assert t.dominant_stage == "stage1"
            assert t.stage1_seconds > 100 * t.stage2_seconds

    def test_quantum_fraction_tiny(self, model):
        t = model.time_to_solution(100)
        assert t.quantum_fraction < 1e-5

    def test_fractions_sum_to_one(self, model):
        fr = model.time_to_solution(30).stage_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_sweep(self, model):
        rows = model.sweep([10, 20, 30])
        assert [r.lps for r in rows] == [10, 20, 30]
        totals = [r.total_seconds for r in rows]
        assert totals == sorted(totals)


class TestEmbeddingModes:
    def test_offline_removes_bottleneck(self):
        online = SplitExecutionModel(embedding_mode="online")
        offline = SplitExecutionModel(embedding_mode="offline")
        t_on = online.time_to_solution(100)
        t_off = offline.time_to_solution(100)
        assert t_off.stage1_seconds < t_on.stage1_seconds / 100
        # With offline embedding the constant programming cost dominates.
        assert t_off.stage1.processor_initialize > t_off.stage1.embedding_flops

    def test_offline_lookup_cost_scales(self):
        offline = SplitExecutionModel(embedding_mode="offline")
        b_small = offline.time_to_solution(10).stage1
        b_large = offline.time_to_solution(100).stage1
        assert b_large.embedding_flops > b_small.embedding_flops

    def test_bad_mode(self):
        with pytest.raises(ValidationError):
            SplitExecutionModel(embedding_mode="cached")


class TestAnalysis:
    def test_required_speedup_is_many_orders(self, model):
        """'must be reduced by many orders of magnitude' (paper Sec. 4)."""
        speedup = model.required_embedding_speedup(100)
        assert speedup > 1e5

    def test_required_speedup_grows_with_size(self, model):
        assert model.required_embedding_speedup(100) > model.required_embedding_speedup(20)

    def test_bottleneck_label(self, model):
        assert model.bottleneck(50) == "stage1"

    def test_zero_quantum_time_guard(self):
        m = SplitExecutionModel(stage2=Stage2Model())
        with pytest.raises(ValidationError):
            # accuracy 0 -> zero repetitions -> zero anneal, but readout
            # constants still nonzero; force a truly zero stage2 instead.
            t = m.time_to_solution(10, accuracy=0.0)
            if t.stage2_seconds > 0:
                raise ValidationError("nonzero quantum time")
            m.required_embedding_speedup(10, accuracy=0.0)


class TestRuntimeBridge:
    def test_profile_fields(self, model):
        p = model.request_profile(50, network_latency=2e-4)
        t = model.time_to_solution(50)
        assert p.processor_init == pytest.approx(t.stage1.processor_initialize)
        assert p.quantum_execution == pytest.approx(t.stage2_seconds)
        assert p.postprocessing == pytest.approx(t.stage3_seconds)
        assert p.network_latency == 2e-4
        # The profile partitions stage 1 exactly.
        assert p.ising_generation + p.embedding == pytest.approx(
            t.stage1_seconds - t.stage1.processor_initialize
        )

    def test_profile_runs_in_des(self, model):
        from repro.runtime import run_single_session

        p = model.request_profile(20)
        latency, trace = run_single_session(p)
        assert latency == pytest.approx(p.total_service_time)
        per_op = trace.total_by_operation()
        assert per_op["minor_embedding"] > per_op["anneal_and_readout"]
