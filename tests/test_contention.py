"""Tests for the contended multi-tenant workload subsystem.

Covers the queue disciplines, the workload/metrics dataclasses, the
contention simulator's determinism and physics, the analytic M/M/1 and
M/D/1 cross-check (registry-parametrized, like the backend differential
suite), the Resource's deterministic release ordering, and the span
``wait_s`` attribution satellite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._rng import spawn_stream
from repro.contention import (
    ANALYTIC_MODELS,
    QUEUE_POLICY_NAMES,
    ContentionMetrics,
    ContentionWorkload,
    QueueDiscipline,
    get_analytic_model,
    get_queue_policy,
    md1_prediction,
    mm1_prediction,
    simulate_contention,
)
from repro.contention.simulate import CONTENTION_DOMAIN
from repro.exceptions import SimulationError, ValidationError
from repro.runtime import RequestProfile, Simulator, Trace
from repro.runtime.layers import run_single_session


def _rng(key: int = 0, seed: int = 0) -> np.random.Generator:
    return spawn_stream(seed, CONTENTION_DOMAIN, key)


def _flat_profile(service_s: float = 0.02) -> RequestProfile:
    """A pure single-server queue: all time is QPU occupancy."""
    return RequestProfile(0.0, 0.0, 0.0, service_s, 0.0)


def _mixed_profiles() -> tuple[RequestProfile, ...]:
    return tuple(
        RequestProfile(0.001, 0.002, 0.004, base, 0.003)
        for base in (0.01, 0.02, 0.04)
    )


class TestDisciplines:
    def test_registry_names(self):
        assert QUEUE_POLICY_NAMES == ("fifo", "priority", "round-robin")

    @pytest.mark.parametrize("name", QUEUE_POLICY_NAMES)
    def test_protocol_conformance(self, name):
        discipline = get_queue_policy(name)
        assert isinstance(discipline, QueueDiscipline)
        assert discipline.name == name
        assert discipline.quanta >= 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="unknown queue policy"):
            get_queue_policy("lifo")

    def test_fifo_selects_earliest(self):
        from repro.runtime import Waiter

        waiting = (
            Waiter(1, 0.0, 5.0, None),
            Waiter(2, 0.0, 1.0, None),
            Waiter(3, 1.0, 3.0, None),
        )
        assert get_queue_policy("fifo").select(waiting) == 0
        assert get_queue_policy("round-robin").select(waiting) == 0

    def test_priority_selects_smallest_tag_ties_fifo(self):
        from repro.runtime import Waiter

        waiting = (
            Waiter(1, 0.0, 5.0, None),
            Waiter(2, 0.0, 1.0, None),
            Waiter(3, 1.0, 1.0, None),
        )
        assert get_queue_policy("priority").select(waiting) == 1


class TestResourceOrdering:
    def test_same_time_waiters_grant_in_arrival_order(self):
        """Same-timestamp requests are granted by deterministic arrival seq."""
        sim = Simulator()
        res = sim.resource(capacity=1)
        grants = []

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def claimant(label):
            yield res.request()
            grants.append((label, sim.now))
            yield sim.timeout(0.5)
            res.release()

        sim.process(holder())
        # All three request at t=0 while the resource is held.
        for label in ("a", "b", "c"):
            sim.process(claimant(label))
        sim.run()
        assert [g[0] for g in grants] == ["a", "b", "c"]

    def test_discipline_reorders_grants(self):
        sim = Simulator()
        res = sim.resource(capacity=1, select=get_queue_policy("priority").select)
        grants = []

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def claimant(label, size):
            yield res.request(tag=size)
            grants.append(label)
            yield sim.timeout(0.5)
            res.release()

        sim.process(holder())
        sim.process(claimant("large", 9.0))
        sim.process(claimant("small", 1.0))
        sim.process(claimant("medium", 4.0))
        sim.run()
        assert grants == ["small", "medium", "large"]

    def test_invalid_discipline_index_rejected(self):
        sim = Simulator()
        res = sim.resource(capacity=1, select=lambda waiting: len(waiting))

        def holder():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def claimant():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(claimant())
        with pytest.raises(SimulationError, match="invalid"):
            sim.run()


class TestSpanWaitAttribution:
    def test_wait_s_defaults_to_zero(self):
        trace = Trace()
        span = trace.record("qhw", "program_processor", 0.0, 1.0, session=2)
        assert span.wait_s == 0.0

    def test_negative_wait_rejected(self):
        with pytest.raises(ValidationError, match="negative wait_s"):
            Trace().record("qhw", "op", 0.0, 1.0, wait_s=-0.5)

    def test_wait_does_not_change_duration(self):
        span = Trace().record("qhw", "op", 1.0, 3.0, wait_s=7.0)
        assert span.duration == 2.0
        assert span.wait_s == 7.0

    def test_per_session_wait_aggregation(self):
        trace = Trace()
        trace.record("qhw", "op", 0.0, 1.0, session=0, wait_s=0.25)
        trace.record("qhw", "op", 1.0, 2.0, session=1, wait_s=1.5)
        trace.record("qhw", "op", 2.0, 3.0, session=1, wait_s=0.5)
        assert trace.total_wait_by_session() == {0: 0.25, 1: 2.0}
        assert trace.session_wait(1) == 2.0

    def test_contended_sessions_record_wait_on_spans(self):
        """Two simultaneous sessions: the queued one carries the wait."""
        from repro.runtime import split_execution_session

        sim = Simulator()
        trace = Trace()
        qpu = sim.resource(capacity=1, name="qpu")
        profile = RequestProfile(0.0, 0.0, 0.5, 1.0, 0.0)
        for session in (0, 1):
            sim.process(split_execution_session(sim, qpu, profile, trace, session))
        sim.run()
        waits = trace.total_wait_by_session()
        assert waits[0] == 0.0
        assert waits[1] == pytest.approx(1.5)  # init + anneal of session 0

    def test_uncontended_session_has_zero_wait(self):
        _, trace = run_single_session(RequestProfile(0.1, 0.1, 0.1, 0.1, 0.1))
        assert all(s.wait_s == 0.0 for s in trace.spans)


class TestContentionWorkload:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValidationError, match="empty workload"):
            ContentionWorkload(sessions=0, arrival_rate=0.0)

    def test_negative_sessions_rejected(self):
        with pytest.raises(ValidationError, match="sessions"):
            ContentionWorkload(sessions=-1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValidationError, match="arrival_rate"):
            ContentionWorkload(arrival_rate=float("nan"))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError, match="queue policy"):
            ContentionWorkload(queue_policy="random")

    def test_bad_service_law_rejected(self):
        with pytest.raises(ValidationError, match="service"):
            ContentionWorkload(service="uniform")

    def test_num_requests(self):
        assert ContentionWorkload(sessions=3, session_requests=8).num_requests == 24
        w = ContentionWorkload(sessions=2, arrival_rate=1.0,
                               session_requests=8, open_requests=16)
        assert w.num_requests == 32


class TestSimulateContention:
    def test_deterministic_given_stream(self):
        workload = ContentionWorkload(sessions=3, arrival_rate=5.0,
                                      open_requests=32, session_requests=8)
        a = simulate_contention(_mixed_profiles(), workload, _rng(11))
        b = simulate_contention(_mixed_profiles(), workload, _rng(11))
        assert a == b

    def test_different_streams_differ(self):
        workload = ContentionWorkload(sessions=3, session_requests=8)
        a = simulate_contention(_mixed_profiles(), workload, _rng(1))
        b = simulate_contention(_mixed_profiles(), workload, _rng(2))
        assert a != b

    def test_empty_profiles_rejected(self):
        with pytest.raises(ValidationError, match="at least one profile"):
            simulate_contention([], ContentionWorkload(), _rng())

    def test_metrics_shape(self):
        workload = ContentionWorkload(sessions=2, session_requests=8)
        m = simulate_contention(_mixed_profiles(), workload, _rng())
        assert isinstance(m, ContentionMetrics)
        assert m.requests == 16
        assert 0.0 < m.latency_p50_s <= m.latency_p95_s <= m.latency_p99_s
        assert 0.0 <= m.utilization <= 1.0
        assert m.busy_s <= m.makespan_s

    def test_single_session_never_queues(self):
        """One closed session with think time: the annealer never contends."""
        workload = ContentionWorkload(sessions=1, session_requests=16)
        m = simulate_contention(_mixed_profiles(), workload, _rng())
        assert m.mean_queue_wait_s == 0.0

    def test_contention_produces_queueing(self):
        workload = ContentionWorkload(sessions=8, session_requests=8,
                                      think_factor=0.0)
        m = simulate_contention(_mixed_profiles(), workload, _rng())
        assert m.mean_queue_wait_s > 0.0
        assert m.utilization > 0.5

    def test_priority_beats_fifo_on_mean_latency(self):
        """Shortest-job-first improves the mean under a heavy size mix."""
        profiles = tuple(
            RequestProfile(0.0, 0.0, 0.001, base, 0.0) for base in (0.01, 0.1, 1.0)
        )
        fifo = simulate_contention(
            profiles,
            ContentionWorkload(sessions=8, session_requests=8, think_factor=0.0,
                               queue_policy="fifo"),
            _rng(5),
        )
        prio = simulate_contention(
            profiles,
            ContentionWorkload(sessions=8, session_requests=8, think_factor=0.0,
                               queue_policy="priority"),
            _rng(5),
        )
        assert prio.mean_latency_s < fifo.mean_latency_s

    def test_round_robin_pays_reprogramming(self):
        """Time slicing re-programs the processor per quantum: more busy time."""
        profiles = (_flat_profile(0.05),)
        heavy_init = (RequestProfile(0.0, 0.0, 0.01, 0.05, 0.0),)
        kw = dict(sessions=6, session_requests=8, think_factor=0.0)
        fifo = simulate_contention(
            heavy_init, ContentionWorkload(queue_policy="fifo", **kw), _rng(7))
        rr = simulate_contention(
            heavy_init, ContentionWorkload(queue_policy="round-robin", **kw), _rng(7))
        assert rr.busy_s > fifo.busy_s
        # With zero programming cost the busy time matches exactly.
        fifo0 = simulate_contention(
            profiles, ContentionWorkload(queue_policy="fifo", **kw), _rng(7))
        rr0 = simulate_contention(
            profiles, ContentionWorkload(queue_policy="round-robin", **kw), _rng(7))
        assert rr0.busy_s == pytest.approx(fifo0.busy_s)

    def test_trace_capture_with_wait_attribution(self):
        workload = ContentionWorkload(sessions=4, session_requests=4,
                                      think_factor=0.0)
        trace = Trace()
        m = simulate_contention(_mixed_profiles(), workload, _rng(3), trace=trace)
        waits = trace.total_wait_by_session()
        assert sum(waits.values()) == pytest.approx(
            m.mean_queue_wait_s * m.requests)
        # QPU busy time from spans matches the accumulated busy counter.
        qhw = [s for s in trace.spans if s.layer == "qhw"]
        assert sum(s.duration for s in qhw) == pytest.approx(m.busy_s)


class TestAnalyticModule:
    def test_mm1_formulas(self):
        p = mm1_prediction(arrival_rate=5.0, mean_service_s=0.1)
        assert p.utilization == pytest.approx(0.5)
        assert p.mean_wait_s == pytest.approx(0.1)  # rho s / (1 - rho)
        assert p.mean_latency_s == pytest.approx(0.2)

    def test_md1_half_of_mm1(self):
        mm1 = mm1_prediction(4.0, 0.125)
        md1 = md1_prediction(4.0, 0.125)
        assert md1.mean_wait_s == pytest.approx(mm1.mean_wait_s / 2.0)
        assert md1.utilization == mm1.utilization

    def test_unstable_queue_rejected(self):
        with pytest.raises(ValidationError, match="unstable"):
            mm1_prediction(arrival_rate=10.0, mean_service_s=0.2)
        with pytest.raises(ValidationError, match="unstable"):
            md1_prediction(arrival_rate=5.0, mean_service_s=0.2)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValidationError):
            mm1_prediction(0.0, 0.1)
        with pytest.raises(ValidationError):
            md1_prediction(1.0, 0.0)

    def test_registry_lookup(self):
        assert get_analytic_model("mm1").service == "exponential"
        assert get_analytic_model("md1").service == "deterministic"
        with pytest.raises(ValidationError, match="unknown analytic model"):
            get_analytic_model("mg1")


class TestAnalyticDifferential:
    """Simulated open-arrival queues vs queueing theory, within the
    declared envelopes — the contention analogue of the backend
    differential suite, parametrized over the analytic registry."""

    SERVICE_S = 0.02
    RHOS = (0.3, 0.6, 0.8)

    @pytest.mark.parametrize("model", ANALYTIC_MODELS, ids=lambda m: m.name)
    @pytest.mark.parametrize("rho", RHOS)
    def test_wait_and_utilization_within_envelope(self, model, rho):
        arrival_rate = rho / self.SERVICE_S
        workload = ContentionWorkload(
            sessions=0,
            arrival_rate=arrival_rate,
            queue_policy="fifo",
            open_requests=4000,
            service=model.service,
        )
        metrics = simulate_contention(
            (_flat_profile(self.SERVICE_S),), workload, _rng(0, seed=7)
        )
        prediction = model.predict(arrival_rate, self.SERVICE_S)
        assert model.wait_within_envelope(metrics.mean_queue_wait_s, prediction), (
            f"{model.name} rho={rho}: simulated wait {metrics.mean_queue_wait_s:.5f} "
            f"outside envelope of predicted {prediction.mean_wait_s:.5f}"
        )
        assert model.utilization_within_envelope(metrics.utilization, prediction), (
            f"{model.name} rho={rho}: simulated utilization {metrics.utilization:.4f} "
            f"outside envelope of predicted {prediction.utilization:.4f}"
        )

    def test_declared_envelopes_are_finite_and_positive(self):
        for model in ANALYTIC_MODELS:
            assert 0.0 < model.wait_rtol < 1.0
            assert 0.0 < model.utilization_rtol < 1.0


class TestDefaultsConsistency:
    def test_base_defaults_mirror_contention_constants(self):
        """backends.base keeps literal defaults to stay import-cycle free;
        they must track the contention package's canonical values."""
        from repro.backends.base import CONTENTION_AXES, DEFAULT_OPERATING_POINT
        from repro.contention import DEFAULT_QUEUE_POLICY

        assert DEFAULT_OPERATING_POINT["queue_policy"] == DEFAULT_QUEUE_POLICY
        assert DEFAULT_OPERATING_POINT["sessions"] == 1
        assert DEFAULT_OPERATING_POINT["arrival_rate"] == 0.0
        assert CONTENTION_AXES == {"queue_policy", "sessions", "arrival_rate"}

    def test_only_des_declares_contention_axes(self):
        from repro.backends import CONTENTION_AXES, available_backends, capabilities

        for name in available_backends():
            supported = capabilities(name).supported_axes
            if name == "des":
                assert CONTENTION_AXES <= supported
            else:
                assert not (CONTENTION_AXES & supported)
