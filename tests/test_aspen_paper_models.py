"""Regression tests for the paper's bundled listings (Figs. 5-8)."""

from __future__ import annotations

import math

import pytest

from repro.aspen import AspenEvaluator, load_paper_models


@pytest.fixture(scope="module")
def setup():
    reg = load_paper_models()
    machine = reg.machine("SimpleNode")
    return reg, machine, AspenEvaluator(machine)


class TestFig5Machine:
    def test_all_sockets_present(self, setup):
        _, machine, _ = setup
        assert machine.socket_names() == [
            "dwave_vesuvius_20",
            "intel_xeon_e5_2680",
            "nvidia_m2090",
        ]

    def test_quops_is_20us(self, setup):
        """Fig. 5: resource QuOps(number) [number * 20/1000000]."""
        _, machine, _ = setup
        view = machine.socket("dwave_vesuvius_20")
        lookup = view.find_resource("QuOps")
        seconds, _ = lookup.time_seconds(1, [])
        assert seconds == pytest.approx(20e-6)
        seconds, _ = lookup.time_seconds(1000, [])
        assert seconds == pytest.approx(0.02)

    def test_qpu_socket_has_memory_and_link(self, setup):
        """The ASPEN syntax requires a memory element and PCIe link (Fig. 5)."""
        _, machine, _ = setup
        view = machine.socket("dwave_vesuvius_20")
        assert view.memory is not None
        assert view.link is not None

    def test_cpu_resources(self, setup):
        _, machine, _ = setup
        view = machine.socket("intel_xeon_e5_2680")
        for resource in ("flops", "loads", "stores", "intracomm"):
            assert view.find_resource(resource) is not None


class TestFig6Stage1:
    def test_parameters_resolve(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                        params={"LPS": 30})
        p = r.parameters
        assert p["NH"] == 30
        assert p["EH"] == 435
        assert p["NG"] == 1152
        assert p["EG"] == 3360
        assert p["Ising"] == 900
        assert p["ParameterSetting"] == 27000
        assert p["ProcessorInitialize"] == 319573

    def test_embedding_ops_formula(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                        params={"LPS": 30})
        expected = (3360 + 1152 * math.log(1152)) * (2 * 435) * 30 * 1152
        assert r.parameters["EmbeddingOps"] == pytest.approx(expected)

    def test_flops_dominate_at_large_sizes(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                        params={"LPS": 100})
        assert r.dominant_resource() == "flops"

    def test_init_constant_dominates_small_sizes(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                        params={"LPS": 1})
        assert r.per_resource()["microseconds"] == pytest.approx(0.319573)
        assert r.total_seconds < 0.35

    def test_monotone_in_lps(self, setup):
        reg, _, ev = setup
        app = reg.application("Stage1")
        times = [
            ev.evaluate(app, socket="intel_xeon_e5_2680", params={"LPS": n}).total_seconds
            for n in (1, 10, 30, 50, 100)
        ]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_three_kernels_executed(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                        params={"LPS": 10})
        assert set(r.per_kernel()) == {"InitializeData", "EmbedData", "InitializeProcessor"}


class TestFig7Stage2:
    def test_quops_count_eq6(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage2"), socket="dwave_vesuvius_20",
                        params={"Accuracy": 99.0, "Success": 0.7})
        quops = [c for c in r.clauses if c.resource == "QuOps"]
        assert quops[0].amount == 4  # ceil(log(0.01)/log(0.3))

    def test_total_time(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage2"), socket="dwave_vesuvius_20",
                        params={"Accuracy": 99.0, "Success": 0.7})
        # 4 anneals at 20us + 320us readout + 5us thermalization.
        assert r.total_seconds == pytest.approx((4 * 20 + 320 + 5) * 1e-6)

    def test_default_success_listing_value(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage2"), socket="dwave_vesuvius_20",
                        params={"Accuracy": 99.0})
        assert r.parameters["Success"] == 0.9999

    def test_flat_in_accuracy(self, setup):
        """Fig. 9(b): stage 2 is nearly flat across target accuracies."""
        reg, _, ev = setup
        app = reg.application("Stage2")
        t_low = ev.evaluate(app, socket="dwave_vesuvius_20",
                            params={"Accuracy": 50.0, "Success": 0.7}).total_seconds
        t_high = ev.evaluate(app, socket="dwave_vesuvius_20",
                             params={"Accuracy": 99.99, "Success": 0.7}).total_seconds
        assert t_high / t_low < 2.0


class TestFig8Stage3:
    def test_results_count(self, setup):
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage3"), socket="intel_xeon_e5_2680",
                        params={"LPS": 50})
        # ceil(log(0.01)/log(0.25)) = 4 with the listing defaults.
        assert r.parameters["Results"] == 4

    def test_nearly_linear_in_lps(self, setup):
        reg, _, ev = setup
        app = reg.application("Stage3")
        t50 = ev.evaluate(app, socket="intel_xeon_e5_2680", params={"LPS": 50}).total_seconds
        t100 = ev.evaluate(app, socket="intel_xeon_e5_2680", params={"LPS": 100}).total_seconds
        assert t100 / t50 == pytest.approx(2.0, rel=0.3)

    def test_tiny_magnitude(self, setup):
        """Fig. 9(c): nanosecond scale, negligible next to stage 1."""
        reg, _, ev = setup
        r = ev.evaluate(reg.application("Stage3"), socket="intel_xeon_e5_2680",
                        params={"LPS": 100})
        assert r.total_seconds < 1e-6


class TestStageOrdering:
    def test_stage1_dominates_stage2_dominates_stage3(self, setup):
        """The paper's central conclusion, via the ASPEN artifacts alone."""
        reg, _, ev = setup
        t1 = ev.evaluate(reg.application("Stage1"), socket="intel_xeon_e5_2680",
                         params={"LPS": 50}).total_seconds
        t2 = ev.evaluate(reg.application("Stage2"), socket="dwave_vesuvius_20",
                         params={"Accuracy": 99.0, "Success": 0.7}).total_seconds
        t3 = ev.evaluate(reg.application("Stage3"), socket="intel_xeon_e5_2680",
                         params={"LPS": 50}).total_seconds
        assert t1 > 1000 * t2
        assert t2 > 1000 * t3
