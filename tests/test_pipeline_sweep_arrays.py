"""Equivalence of the vectorized sweep fast path with the scalar pipeline.

``SplitExecutionModel.sweep_arrays`` promises element-wise *exact* equality
with ``sweep`` (same floating-point operation sequence); these tests pin
that across a 100-point LPS grid, both embedding modes, and non-default
operating points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SplitExecutionModel, Stage1Model, Stage3Model
from repro.exceptions import ValidationError


@pytest.fixture(scope="module", params=["online", "offline"])
def model(request) -> SplitExecutionModel:
    return SplitExecutionModel(embedding_mode=request.param)


GRID = np.arange(0, 500, 5)  # 100 points, including lps = 0
OPERATING_POINTS = [(0.99, 0.7), (0.995, 0.61), (0.5, 0.9999)]


class TestSweepEquivalence:
    @pytest.mark.parametrize("accuracy,success", OPERATING_POINTS)
    def test_totals_exact(self, model, accuracy, success):
        scalar = model.sweep(GRID, accuracy, success)
        arrays = model.sweep_arrays(GRID, accuracy, success)
        assert np.array_equal(arrays.total_seconds, [t.total_seconds for t in scalar])
        assert np.array_equal(arrays.stage1_seconds, [t.stage1_seconds for t in scalar])
        assert arrays.stage2_seconds == scalar[0].stage2_seconds
        assert np.array_equal(arrays.stage3_seconds, [t.stage3_seconds for t in scalar])

    def test_stage1_components_exact(self, model):
        scalar = model.sweep(GRID)
        arrays = model.sweep_arrays(GRID)
        for component in (
            "ising_generation",
            "parameter_setting",
            "embedding_flops",
            "input_loads",
            "output_stores",
            "intracomm",
            "processor_initialize",
        ):
            assert np.array_equal(
                getattr(arrays.stage1, component),
                [getattr(t.stage1, component) for t in scalar],
            ), component

    def test_stage3_components_exact(self, model):
        scalar = model.sweep(GRID, accuracy=0.999, success=0.5)
        arrays = model.sweep_arrays(GRID, accuracy=0.999, success=0.5)
        assert arrays.stage3.results == scalar[0].stage3.results
        assert np.array_equal(arrays.stage3.loads, [t.stage3.loads for t in scalar])
        assert np.array_equal(arrays.stage3.stores, [t.stage3.stores for t in scalar])
        assert np.array_equal(arrays.stage3.sort_flops, [t.stage3.sort_flops for t in scalar])

    def test_derived_quantities_match_scalar(self, model):
        scalar = model.sweep(GRID)
        arrays = model.sweep_arrays(GRID)
        assert np.array_equal(
            arrays.quantum_fraction, [t.quantum_fraction for t in scalar]
        )
        assert list(arrays.dominant_stage()) == [t.dominant_stage for t in scalar]
        assert np.array_equal(
            arrays.stage1.classical_translation,
            [t.stage1.classical_translation for t in scalar],
        )

    def test_len_and_lps_roundtrip(self, model):
        arrays = model.sweep_arrays(range(1, 51))
        assert len(arrays) == 50
        assert np.array_equal(arrays.lps, np.arange(1, 51))


class TestValidation:
    def test_non_1d_rejected(self, model):
        with pytest.raises(ValidationError, match="1-D"):
            model.sweep_arrays(np.ones((2, 2), dtype=np.intp))

    def test_negative_lps_rejected(self, model):
        with pytest.raises(ValidationError, match="non-negative"):
            model.sweep_arrays(np.array([3, -1]))

    def test_float_values_truncate_like_scalar(self, model):
        scalar = model.sweep([10.9, 20.2])
        arrays = model.sweep_arrays(np.array([10.9, 20.2]))
        assert np.array_equal(arrays.lps, [10, 20])
        assert np.array_equal(arrays.total_seconds, [t.total_seconds for t in scalar])


class TestStageArrayBreakdowns:
    def test_stage1_requires_integer_dtype(self):
        with pytest.raises(ValidationError, match="integer"):
            Stage1Model().breakdown_arrays(np.array([1.5, 2.5]))

    def test_stage3_requires_integer_dtype(self):
        with pytest.raises(ValidationError, match="integer"):
            Stage3Model().breakdown_arrays(np.array([1.5]))

    def test_stage1_narrow_dtype_does_not_overflow(self):
        """lps*(lps-1) must widen past int32 before the product (regression)."""
        m = Stage1Model()
        lps = 100_000
        arr = m.breakdown_arrays(np.array([lps], dtype=np.int32))
        assert arr.total[0] == m.breakdown(lps).total

    def test_stage1_matches_scalar_breakdown(self):
        m = Stage1Model()
        arr = m.breakdown_arrays(np.array([0, 1, 30, 100]))
        for i, lps in enumerate((0, 1, 30, 100)):
            assert arr.total[i] == m.breakdown(lps).total

    def test_stage3_matches_scalar_breakdown(self):
        m = Stage3Model()
        arr = m.breakdown_arrays(np.array([0, 1, 50]))
        for i, lps in enumerate((0, 1, 50)):
            assert arr.total[i] == m.breakdown(lps).total
