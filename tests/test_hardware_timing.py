"""Tests for the DW2 timing constants (paper Figs. 5-7)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.hardware import DW2_TIMING, DWaveTimingModel


class TestPaperConstants:
    def test_processor_initialize_total(self):
        """Fig. 6: StateCon + PMMSW + PMMElec + PMMChip + PMMTherm + SWRun + ElecRun."""
        expected = 252162 + 33095 + 0 + 11264 + 10000 + 4000 + 9052
        assert DW2_TIMING.processor_initialize_us == expected == 319573

    def test_processor_initialize_seconds(self):
        assert DW2_TIMING.processor_initialize_s == pytest.approx(0.319573)

    def test_fig5_quops_formula(self):
        """QuOps(number) [number * 20/1000000] — 20 us per anneal, in seconds."""
        assert DW2_TIMING.quops_seconds(1) == pytest.approx(20e-6)
        assert DW2_TIMING.quops_seconds(1_000_000) == pytest.approx(20.0)

    def test_fig7_sample_constants(self):
        assert DW2_TIMING.readout_us == 320.0
        assert DW2_TIMING.thermalization_us == 5.0


class TestCycles:
    def test_sample_cycle(self):
        assert DW2_TIMING.sample_cycle_us(1) == pytest.approx(20 + 320 + 5)
        assert DW2_TIMING.sample_cycle_us(10) == pytest.approx(3450)
        assert DW2_TIMING.sample_cycle_s(10) == pytest.approx(3450e-6)

    def test_zero_reads(self):
        assert DW2_TIMING.sample_cycle_us(0) == 0.0

    def test_negative_reads_rejected(self):
        with pytest.raises(ValidationError):
            DW2_TIMING.sample_cycle_us(-1)
        with pytest.raises(ValidationError):
            DW2_TIMING.quops_seconds(-5)


class TestCustomization:
    def test_with_anneal_time(self):
        slow = DW2_TIMING.with_anneal_time(100.0)
        assert slow.anneal_us == 100.0
        assert slow.readout_us == DW2_TIMING.readout_us
        assert slow.quops_seconds(1) == pytest.approx(100e-6)
        # original untouched
        assert DW2_TIMING.anneal_us == 20.0

    def test_negative_constant_rejected(self):
        with pytest.raises(ValidationError):
            DWaveTimingModel(anneal_us=-1.0)

    def test_programming_dominates_single_sample(self):
        """The paper's observation: init (~0.32 s) >> one sample cycle (~345 us)."""
        ratio = DW2_TIMING.processor_initialize_us / DW2_TIMING.sample_cycle_us(1)
        assert ratio > 900
