"""End-to-end tests of ``repro.service.client`` against a live server.

Where ``tests/test_service.py`` pins the wire protocol with raw
``http.client`` calls, this suite exercises the supported client library:
submit/wait/fetch convenience, structured :class:`ServiceError` raising
(dispatch on ``exc.code``, never message text), timeout behavior, and the
failed-job path via a deliberately broken custom backend.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro import backends
from repro.service import ServiceError, StudyServer, StudyServiceClient
from repro.service.protocol import (
    ERR_CONNECTION,
    ERR_INVALID_SPEC,
    ERR_JOB_FAILED,
    ERR_JOB_NOT_READY,
    ERR_TIMEOUT,
    ERR_UNKNOWN_BACKEND,
    ERR_UNKNOWN_JOB,
)
from repro.studies import ScenarioSpec, run_study

SPEC = ScenarioSpec(
    axes={"lps": [1, 2, 3, 4, 5], "accuracy": [0.9, 0.99]}, name="client-e2e"
)


@pytest.fixture()
def server(tmp_path):
    with StudyServer(cache=tmp_path / "cache", job_workers=2) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return StudyServiceClient(server.url)


@pytest.fixture()
def paused_client():
    with StudyServer(job_workers=0, queue_size=4) as srv:
        yield StudyServiceClient(srv.url)


# --------------------------------------------------------------------- #
# Happy path
# --------------------------------------------------------------------- #
def test_run_round_trips_the_exact_study_bytes(client):
    artifact = client.run(SPEC)
    assert artifact.body == run_study(SPEC).artifact_bytes()
    assert artifact.served_from_cache is False
    assert artifact.cache_shards == "0/1"
    assert artifact.etag == f'"{artifact.job_id}"'

    results = artifact.results()
    assert results.num_points == SPEC.num_points
    assert results.spec == SPEC
    assert np.array_equal(
        results.column("total_s"), run_study(SPEC).column("total_s")
    )


def test_submit_accepts_spec_instances_and_payload_dicts(client):
    from_instance = client.submit(SPEC)
    from_payload = client.submit(SPEC.to_dict())
    assert from_payload["job_id"] == from_instance["job_id"]
    assert from_payload["deduplicated"] is True


def test_second_run_is_answered_without_reexecution(server, client):
    first = client.run(SPEC)
    executed = server.manager.executed_shards
    second = client.run(SPEC)
    assert second.body == first.body
    assert server.manager.executed_shards == executed


def test_healthz_and_backends_views(client):
    health = client.healthz()
    assert health["status"] == "ok"
    listing = client.backends()
    assert {b["name"] for b in listing["backends"]} >= {"aspen", "closed_form", "des"}
    assert listing["default"] == "closed_form"


def test_wait_returns_promptly_for_finished_jobs(client):
    job_id = client.submit(SPEC)["job_id"]
    snapshot = client.wait(job_id, timeout=60.0)
    assert snapshot["state"] == "done"
    # Waiting again on a terminal job returns immediately with the same view.
    assert client.wait(job_id, timeout=0.001) == snapshot


# --------------------------------------------------------------------- #
# Structured errors
# --------------------------------------------------------------------- #
def test_invalid_spec_raises_coded_service_error(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"axes": {"lps": []}})
    assert excinfo.value.code == ERR_INVALID_SPEC
    assert excinfo.value.status == 400


def test_unknown_backend_raises_coded_service_error(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit({"axes": {"lps": [1], "backend": ["warp_drive"]}})
    assert excinfo.value.code == ERR_UNKNOWN_BACKEND
    assert excinfo.value.status == 400


def test_unknown_job_raises_coded_service_error(client):
    with pytest.raises(ServiceError) as excinfo:
        client.status("f" * 64)
    assert excinfo.value.code == ERR_UNKNOWN_JOB
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.artifact("f" * 64)
    assert excinfo.value.code == ERR_UNKNOWN_JOB


def test_artifact_of_unfinished_job_raises_not_ready(paused_client):
    job_id = paused_client.submit(SPEC)["job_id"]
    with pytest.raises(ServiceError) as excinfo:
        paused_client.artifact(job_id)
    assert excinfo.value.code == ERR_JOB_NOT_READY
    assert excinfo.value.status == 409


def test_wait_deadline_raises_client_timeout(paused_client):
    job_id = paused_client.submit(SPEC)["job_id"]
    with pytest.raises(ServiceError) as excinfo:
        paused_client.wait(job_id, timeout=0.15, poll_interval=0.02)
    assert excinfo.value.code == ERR_TIMEOUT
    assert excinfo.value.status == 0  # never reached the server


def test_unreachable_server_raises_connection_error():
    # Grab a port that is definitely closed right now.
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    client = StudyServiceClient(f"http://127.0.0.1:{port}", timeout=2.0)
    with pytest.raises(ServiceError) as excinfo:
        client.healthz()
    assert excinfo.value.code == ERR_CONNECTION


# --------------------------------------------------------------------- #
# Failed jobs
# --------------------------------------------------------------------- #
class _ExplodingBackend(backends.PerformanceBackend):
    """A registered backend whose evaluation always fails at run time."""

    name = "exploding"
    capabilities = backends.BackendCapabilities(
        supported_axes=frozenset(backends.DEFAULT_OPERATING_POINT),
        rtol=0.0,
        atol=0.0,
        description="always raises (failed-job test double)",
    )

    def evaluate(self, point):
        raise RuntimeError("boom: deliberate test failure")


@pytest.fixture()
def exploding_backend():
    backends.register(_ExplodingBackend)
    try:
        yield
    finally:
        backends.unregister("exploding")


def test_failed_job_surfaces_execution_error(client, exploding_backend):
    spec = {"name": "boom", "axes": {"lps": [1, 2], "backend": ["exploding"]}}
    job_id = client.submit(spec)["job_id"]
    snapshot = client.wait(job_id, timeout=30.0)
    assert snapshot["state"] == "failed"
    assert snapshot["error"]["code"] == "execution-error"
    assert "boom" in snapshot["error"]["message"]

    with pytest.raises(ServiceError) as excinfo:
        client.artifact(job_id)
    assert excinfo.value.code == ERR_JOB_FAILED
    assert excinfo.value.status == 409

    with pytest.raises(ServiceError) as excinfo:
        client.run(spec, timeout=30.0)
    assert excinfo.value.code == "execution-error"
