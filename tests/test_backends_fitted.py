"""Tests specific to the measurement-fitted backends (calibrated / learned).

The registry-parametrized differential suite (test_backend_differential.py)
already holds both to their declared envelopes and to the sweep ==
evaluate-loop contract; this module pins what is specific to them: the
frozen-table replay, the Fig.-9(a) envelope shape, fit determinism, the
training-data hygiene guards, and capability gating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import backends
from repro.backends import full_point
from repro.backends.calibrated import (
    REFERENCE_CMR_TIMINGS_S,
    CalibratedBackend,
    calibrated_stage1,
)
from repro.backends.learned import (
    TRAINING_SWEEP_ROWS,
    LearnedBackend,
    fit_stage_constants,
)
from repro.core.calibration import model_measured_ratios
from repro.core.stage1 import Stage1Model
from repro.exceptions import ValidationError


class TestRegistry:
    def test_both_registered(self):
        names = backends.available_backends()
        assert "calibrated" in names
        assert "learned" in names

    def test_capability_envelopes_declared(self):
        cal = backends.capabilities("calibrated")
        lrn = backends.capabilities("learned")
        # Fig. 9(a): factor of 4 <=> rtol = 3 (|x - ref| <= 3 ref).
        assert cal.rtol == 3.0
        assert lrn.rtol > cal.rtol  # learned declares the wider envelope
        assert "lps" in cal.supported_axes and "lps" in lrn.supported_axes
        assert "embedding_mode" in cal.supported_axes
        assert "embedding_mode" not in lrn.supported_axes


class TestCalibratedBackend:
    def test_replayed_fit_matches_direct_calibration(self):
        backend = backends.get("calibrated")
        expected = calibrated_stage1().embed_rate_scale
        assert backend.embed_rate_scale == expected
        assert np.isfinite(backend.embed_rate_scale)
        assert backend.embed_rate_scale > 0

    def test_fig9a_envelope_shape(self):
        """The fitted model tracks the frozen measurements within a factor
        of 4 at n >= 10; the raw model overestimates below n = 10."""
        fitted = calibrated_stage1()
        ratios = model_measured_ratios(REFERENCE_CMR_TIMINGS_S, fitted)
        for n, r in ratios.items():
            if n >= 10:
                assert 0.25 <= r <= 4.0, (n, r)
        raw = model_measured_ratios(REFERENCE_CMR_TIMINGS_S, Stage1Model())
        for n, r in raw.items():
            if n < 10:
                assert r > 4.0, (n, r)

    def test_stages_2_and_3_untouched(self):
        """Calibration moves only the Stage-1 embedding term."""
        cal = backends.get("calibrated")
        ref = backends.get("closed_form")
        for lps in (0, 10, 50, 100):
            point = full_point(lps=lps)
            a, b = cal.evaluate(point), ref.evaluate(point)
            assert a.stage2_s == b.stage2_s
            assert a.stage3_s == b.stage3_s
            assert a.repetitions == b.repetitions

    def test_stage1_within_declared_envelope(self):
        cal = backends.get("calibrated")
        ref = backends.get("closed_form")
        for lps in (20, 50, 100):
            point = full_point(lps=lps)
            s1, s1_ref = cal.evaluate(point).stage1_s, ref.evaluate(point).stage1_s
            assert s1_ref / 4.0 <= s1 <= 4.0 * s1_ref
            # Calibration shrinks the raw overestimate, never inflates it.
            assert s1 < s1_ref

    def test_offline_mode_identical_to_reference(self):
        """Offline embedding bypasses the calibrated rate entirely."""
        cal = backends.get("calibrated")
        ref = backends.get("closed_form")
        point = full_point(lps=50, embedding_mode="offline")
        a, b = cal.evaluate(point), ref.evaluate(point)
        assert a.stage1_s == b.stage1_s
        assert a.stage2_s == b.stage2_s

    def test_machine_axes_gated(self):
        cal = backends.get("calibrated")
        with pytest.raises(ValidationError, match="not supported"):
            cal.evaluate(full_point(lps=10, clock_hz=3.2e9))
        with pytest.raises(ValidationError, match="not supported"):
            cal.sweep(full_point(anneal_us=40.0), [1, 2])

    def test_deterministic_across_instances(self):
        a, b = CalibratedBackend(), CalibratedBackend()
        assert a.embed_rate_scale == b.embed_rate_scale
        pa = a.evaluate(full_point(lps=37))
        pb = b.evaluate(full_point(lps=37))
        assert pa == pb


class TestLearnedBackend:
    def test_fitted_constants_reasonable(self):
        a1, a2, a3 = backends.get("learned").stage_constants
        for a in (a1, a2, a3):
            assert np.isfinite(a) and a > 0
        # The frozen training sweep encodes mild systematic bias per stage;
        # the fit should land well inside the declared envelope.
        for a in (a1, a2, a3):
            assert 0.25 < a < 4.0

    def test_prediction_is_alpha_times_reference(self):
        lrn = backends.get("learned")
        ref = backends.get("closed_form")
        a1, a2, a3 = lrn.stage_constants
        for lps in (0, 5, 50, 100):
            point = full_point(lps=lps)
            got, base = lrn.evaluate(point), ref.evaluate(point)
            assert got.stage1_s == a1 * base.stage1_s
            assert got.stage2_s == a2 * base.stage2_s
            assert got.stage3_s == a3 * base.stage3_s
            assert got.repetitions == base.repetitions

    def test_training_region_agreement(self):
        """Inside the training region the fit tracks closely — far tighter
        than the declared extrapolation envelope."""
        lrn = backends.get("learned")
        ref = backends.get("closed_form")
        for lps, accuracy, success, *_ in TRAINING_SWEEP_ROWS:
            point = full_point(lps=lps, accuracy=accuracy, success=success)
            got, base = lrn.evaluate(point), ref.evaluate(point)
            assert got.total_seconds == pytest.approx(base.total_seconds, rel=1.0)

    def test_axes_gated(self):
        lrn = backends.get("learned")
        with pytest.raises(ValidationError, match="not supported"):
            lrn.evaluate(full_point(lps=10, embedding_mode="offline"))

    def test_deterministic_across_instances(self):
        a, b = LearnedBackend(), LearnedBackend()
        assert a.stage_constants == b.stage_constants


class TestFitStageConstants:
    def test_nan_measured_rejected(self):
        rows = [(10, 0.99, 0.7, float("nan"), 1e-4, 1e-8)]
        with pytest.raises(ValidationError, match="positive and finite"):
            fit_stage_constants(rows)

    def test_nonpositive_measured_rejected(self):
        rows = [(10, 0.99, 0.7, 1.0, 0.0, 1e-8)]
        with pytest.raises(ValidationError, match="positive and finite"):
            fit_stage_constants(rows)

    def test_inf_measured_rejected(self):
        rows = [(10, 0.99, 0.7, 1.0, 1e-4, float("inf"))]
        with pytest.raises(ValidationError, match="positive and finite"):
            fit_stage_constants(rows)

    def test_wrong_row_width_rejected(self):
        with pytest.raises(ValidationError, match="3 measured stage columns"):
            fit_stage_constants([(10, 0.99, 0.7, 1.0, 1e-4)])

    def test_recovers_known_constants(self):
        """Training rows that ARE alpha * closed form fit alpha exactly."""
        from repro.core.pipeline import SplitExecutionModel

        model = SplitExecutionModel()
        alphas = (0.5, 2.0, 1.25)
        rows = []
        for lps in (10, 40, 80):
            t = model.time_to_solution(lps, 0.99, 0.7)
            rows.append(
                (
                    lps,
                    0.99,
                    0.7,
                    alphas[0] * t.stage1_seconds,
                    alphas[1] * t.stage2_seconds,
                    alphas[2] * t.stage3_seconds,
                )
            )
        fitted = fit_stage_constants(rows, model)
        assert fitted == pytest.approx(alphas, rel=1e-12)


class TestStudyIntegration:
    def test_five_backend_study_within_tolerance(self):
        from repro.studies import ScenarioSpec, run_study

        spec = ScenarioSpec(
            axes={
                "backend": ["closed_form", "calibrated", "learned"],
                "lps": [1, 20, 60],
                "success": [0.61, 0.7],
            },
            name="fitted-backends",
        )
        results = run_study(spec)
        assert results.backends_within_tolerance() == {
            "calibrated": True,
            "learned": True,
        }
        reference = results.column("repetitions")[results.backend_rows("closed_form")]
        for name in ("calibrated", "learned"):
            assert np.array_equal(
                results.column("repetitions")[results.backend_rows(name)], reference
            )
