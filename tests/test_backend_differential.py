"""Differential consistency: every registered backend vs the closed forms.

Three independent implementations of the paper's performance models exist
in the repo — the closed-form pipeline, the ASPEN-evaluated listings, and
the discrete-event runtime — and all of them are reachable through the
``repro.backends`` registry.  This suite parametrizes over that registry:
every non-reference backend is held, per stage, to the tolerance envelope
*it declares in its capabilities descriptor*, so registering a new
backend automatically enrolls it here.

Documented tolerance rationale (mirrored by the declared capabilities):

* **aspen** — relative 1e-12.  Both it and the closed forms evaluate the
  same closed-form expressions; only floating-point association order may
  differ.
* **des** — relative 1e-9 with an absolute floor of 1e-10 s.  The
  simulator *adds* stage durations as event timestamps (``now + delay``
  chains), so each span is a difference of two accumulated sums of order
  the total latency; a span much smaller than the total (e.g. the
  picosecond Stage-3 store at LPS=0 next to the 0.32 s init) carries the
  *timestamps'* ULP as absolute error.  1e-10 s sits far above float64
  ULP at any latency in the grid (~1e-13 s at 607 s) and far below any
  real scheduling bug (whole microseconds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import backends
from repro.backends import PerformanceBackend, full_point
from repro.core import SplitExecutionModel
from repro.runtime.layers import run_single_session

# The shared small scenario grid: LPS spans the Fig. 9 range (0 exercises
# the degenerate empty problem), the probability pairs cover loose and
# tight accuracy targets at weak and strong single-run success.
GRID_LPS = (0, 1, 5, 20, 50, 100)
GRID_PROBS = ((0.5, 0.7), (0.99, 0.7), (0.9999, 0.61), (0.99, 0.9))

DES_RTOL = 1e-9
DES_ATOL = 1e-10

#: Every registered backend except the reference itself.  Computed at
#: import time from the live registry — a new registered backend is
#: differential-tested without touching this file.
NON_REFERENCE_BACKENDS = tuple(
    name for name in backends.available_backends() if name != "closed_form"
)


@pytest.fixture(scope="module")
def model() -> SplitExecutionModel:
    return SplitExecutionModel()


def _grid():
    return [(lps, acc, suc) for lps in GRID_LPS for acc, suc in GRID_PROBS]


@pytest.mark.parametrize("name", NON_REFERENCE_BACKENDS)
@pytest.mark.parametrize("lps,accuracy,success", _grid())
class TestRegistryDifferential:
    """Each backend vs the closed-form reference, at its declared envelope."""

    def test_stage_breakdowns_agree(self, name, lps, accuracy, success):
        caps = backends.capabilities(name)
        point = full_point(lps=lps, accuracy=accuracy, success=success)
        t = backends.get(name).evaluate(point)
        r = backends.get("closed_form").evaluate(point)
        for field in ("stage1_s", "stage2_s", "stage3_s"):
            assert getattr(t, field) == pytest.approx(
                getattr(r, field), rel=caps.rtol, abs=caps.atol
            ), field
        assert t.total_seconds == pytest.approx(
            r.total_seconds, rel=caps.rtol, abs=caps.atol
        )

    def test_derived_quantities_agree(self, name, lps, accuracy, success):
        point = full_point(lps=lps, accuracy=accuracy, success=success)
        t = backends.get(name).evaluate(point)
        r = backends.get("closed_form").evaluate(point)
        assert t.repetitions == r.repetitions
        assert t.dominant_stage == r.dominant_stage


@pytest.mark.parametrize("name", NON_REFERENCE_BACKENDS)
class TestSweepContract:
    """Batched sweep == per-point evaluate loop, bit for bit, per backend."""

    @pytest.mark.parametrize("accuracy,success", GRID_PROBS)
    def test_sweep_matches_evaluate_loop(self, name, accuracy, success):
        backend = backends.get(name)
        config = full_point(accuracy=accuracy, success=success)
        cols = backend.sweep(config, GRID_LPS)
        loop = PerformanceBackend.sweep(backend, config, GRID_LPS)
        for field in (
            "stage1_s", "stage2_s", "stage3_s", "total_s",
            "quantum_fraction", "dominant_stage", "repetitions",
        ):
            assert np.array_equal(getattr(cols, field), getattr(loop, field)), field


@pytest.mark.parametrize("lps,accuracy,success", _grid())
class TestAnalyticVsRuntime:
    """Closed-form pipeline vs the discrete-event Fig.-2 simulation.

    Trace-level checks the backend surface cannot express: end-to-end
    latency accounting (payload transfers included), per-operation span
    recovery, and queue behavior.
    """

    def test_end_to_end_latency(self, model, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        profile = model.request_profile(lps, accuracy, success)
        latency, _ = run_single_session(profile)
        # The DES request additionally pays the two payload transfers the
        # profile carries; subtract them to compare against the model total.
        expected = t.total_seconds + 2 * profile.payload_transfer
        assert latency == pytest.approx(expected, rel=DES_RTOL)
        assert latency == pytest.approx(profile.total_service_time, rel=DES_RTOL)

    def test_per_stage_spans(self, model, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        profile = model.request_profile(lps, accuracy, success)
        _, trace = run_single_session(profile)
        spans = trace.total_by_operation()

        s1 = t.stage1
        assert spans["generate_ising"] == pytest.approx(
            s1.ising_generation + s1.parameter_setting, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["minor_embedding"] == pytest.approx(
            s1.embedding_flops + s1.input_loads + s1.output_stores + s1.intracomm,
            rel=DES_RTOL,
            abs=DES_ATOL,
        )
        assert spans["program_processor"] == pytest.approx(
            s1.processor_initialize, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["anneal_and_readout"] == pytest.approx(
            t.stage2_seconds, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["postprocess_sort"] == pytest.approx(
            t.stage3_seconds, rel=DES_RTOL, abs=DES_ATOL
        )

    def test_uncontended_run_never_queues(self, model, lps, accuracy, success):
        profile = model.request_profile(lps, accuracy, success)
        _, trace = run_single_session(profile)
        assert "queue_wait" not in trace.total_by_operation()


class TestThreeWayStudyGrid:
    """One three-backend sweep through the study executor itself."""

    def test_study_backend_blocks_agree(self):
        from repro.studies import ScenarioSpec, run_study

        spec = ScenarioSpec(
            axes={
                "backend": ["closed_form", "aspen", "des"],
                "lps": [1, 10, 50],
                "accuracy": [0.9, 0.99],
            },
            name="three-way",
        )
        results = run_study(spec)
        assert results.backends_within_tolerance() == {"aspen": True, "des": True}
        # Repetition counts are exactly shared across backend blocks.
        reference = results.column("repetitions")[results.backend_rows("closed_form")]
        for name in ("aspen", "des"):
            assert np.array_equal(
                results.column("repetitions")[results.backend_rows(name)], reference
            )
