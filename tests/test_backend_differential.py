"""Differential consistency: analytic pipeline == ASPEN == DES runtime.

Three independent implementations of the paper's performance models exist
in the repo: the closed-form :class:`SplitExecutionModel` pipeline, the
ASPEN-evaluated listings (``core/aspen_backend.py``), and the
discrete-event runtime (``runtime/des.py`` driving the Fig.-2 layer
sequence).  On a shared scenario grid, all three must agree on the stage
breakdowns — so the backends can never silently drift apart.

Documented tolerances:

* **analytic vs ASPEN** — relative 1e-12.  Both evaluate the same closed
  forms; only floating-point association order may differ.
* **analytic vs DES** — relative 1e-9 with an absolute floor of 1e-10 s.
  The simulator *adds* stage durations as event timestamps (``now +
  delay`` chains), so each span is a difference of two accumulated sums
  of order the total latency; a span much smaller than the total (e.g.
  the picosecond Stage-3 store at LPS=0 next to the 0.32 s init) carries
  the *timestamps'* ULP as absolute error.  1e-10 s sits far above
  float64 ULP at any latency in the grid (~1e-13 s at 607 s) and far
  below any real scheduling bug (whole microseconds).
"""

from __future__ import annotations

import pytest

from repro.core import AspenStageModels, SplitExecutionModel
from repro.runtime.layers import run_single_session

# The shared small scenario grid: LPS spans the Fig. 9 range (0 exercises
# the degenerate empty problem), the probability pairs cover loose and
# tight accuracy targets at weak and strong single-run success.
GRID_LPS = (0, 1, 5, 20, 50, 100)
GRID_PROBS = ((0.5, 0.7), (0.99, 0.7), (0.9999, 0.61), (0.99, 0.9))

ASPEN_RTOL = 1e-12
DES_RTOL = 1e-9
DES_ATOL = 1e-10


@pytest.fixture(scope="module")
def aspen() -> AspenStageModels:
    return AspenStageModels()


@pytest.fixture(scope="module")
def model() -> SplitExecutionModel:
    return SplitExecutionModel()


def _grid():
    return [(lps, acc, suc) for lps in GRID_LPS for acc, suc in GRID_PROBS]


@pytest.mark.parametrize("lps,accuracy,success", _grid())
class TestAnalyticVsAspen:
    """Closed-form pipeline vs the ASPEN-evaluated listings, per stage."""

    def test_stage_breakdowns_agree(self, model, aspen, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        assert t.stage1_seconds == pytest.approx(aspen.stage1_seconds(lps), rel=ASPEN_RTOL)
        assert t.stage2_seconds == pytest.approx(
            aspen.stage2_seconds(accuracy * 100.0, success), rel=ASPEN_RTOL
        )
        assert t.stage3_seconds == pytest.approx(
            aspen.stage3_seconds(lps, accuracy=accuracy, success=success), rel=ASPEN_RTOL
        )

    def test_totals_agree(self, model, aspen, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        evaluated = (
            aspen.stage1_seconds(lps)
            + aspen.stage2_seconds(accuracy * 100.0, success)
            + aspen.stage3_seconds(lps, accuracy=accuracy, success=success)
        )
        assert t.total_seconds == pytest.approx(evaluated, rel=ASPEN_RTOL)


@pytest.mark.parametrize("lps,accuracy,success", _grid())
class TestAnalyticVsRuntime:
    """Closed-form pipeline vs the discrete-event Fig.-2 simulation."""

    def test_end_to_end_latency(self, model, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        profile = model.request_profile(lps, accuracy, success)
        latency, _ = run_single_session(profile)
        # The DES request additionally pays the two payload transfers the
        # profile carries; subtract them to compare against the model total.
        expected = t.total_seconds + 2 * profile.payload_transfer
        assert latency == pytest.approx(expected, rel=DES_RTOL)
        assert latency == pytest.approx(profile.total_service_time, rel=DES_RTOL)

    def test_per_stage_spans(self, model, lps, accuracy, success):
        t = model.time_to_solution(lps, accuracy, success)
        profile = model.request_profile(lps, accuracy, success)
        _, trace = run_single_session(profile)
        spans = trace.total_by_operation()

        s1 = t.stage1
        assert spans["generate_ising"] == pytest.approx(
            s1.ising_generation + s1.parameter_setting, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["minor_embedding"] == pytest.approx(
            s1.embedding_flops + s1.input_loads + s1.output_stores + s1.intracomm,
            rel=DES_RTOL,
            abs=DES_ATOL,
        )
        assert spans["program_processor"] == pytest.approx(
            s1.processor_initialize, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["anneal_and_readout"] == pytest.approx(
            t.stage2_seconds, rel=DES_RTOL, abs=DES_ATOL
        )
        assert spans["postprocess_sort"] == pytest.approx(
            t.stage3_seconds, rel=DES_RTOL, abs=DES_ATOL
        )

    def test_uncontended_run_never_queues(self, model, lps, accuracy, success):
        profile = model.request_profile(lps, accuracy, success)
        _, trace = run_single_session(profile)
        assert "queue_wait" not in trace.total_by_operation()


class TestThreeWayStudyGrid:
    """One three-way sweep: the study executor's rows against both backends."""

    def test_study_rows_match_aspen_and_des(self, aspen):
        from repro.studies import ScenarioSpec, run_study

        spec = ScenarioSpec(
            axes={"lps": [1, 10, 50], "accuracy": [0.9, 0.99]}, name="three-way"
        )
        results = run_study(spec)
        model = SplitExecutionModel()
        for index in range(results.num_points):
            point = spec.point(index)
            row = results.table[index]
            assert row["stage1_s"] == pytest.approx(
                aspen.stage1_seconds(point["lps"]), rel=ASPEN_RTOL
            )
            assert row["stage2_s"] == pytest.approx(
                aspen.stage2_seconds(point["accuracy"] * 100.0, point["success"]),
                rel=ASPEN_RTOL,
            )
            profile = model.request_profile(
                point["lps"], point["accuracy"], point["success"]
            )
            latency, _ = run_single_session(profile)
            assert latency == pytest.approx(
                row["total_s"] + 2 * profile.payload_transfer, rel=DES_RTOL
            )
