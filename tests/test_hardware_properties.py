"""Tests for control-precision modeling (ranges, quantization, programming)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import HardwareError, ValidationError
from repro.hardware import (
    DW2_PROPERTIES,
    DeviceProperties,
    program_ising,
    quantize_value,
    rescale_to_ranges,
)
from repro.qubo import IsingModel, random_ising


class TestQuantize:
    def test_zero_exactly_representable(self):
        """Unused qubits carry 0; the grid must include it (odd level count)."""
        assert quantize_value(0.0, -2.0, 2.0, 5) == 0.0
        assert quantize_value(0.0, -1.0, 1.0, 4) == 0.0

    def test_endpoints_representable(self):
        assert quantize_value(-2.0, -2.0, 2.0, 5) == -2.0
        assert quantize_value(2.0, -2.0, 2.0, 5) == 2.0

    def test_clipping(self):
        assert quantize_value(10.0, -1.0, 1.0, 5) == 1.0
        assert quantize_value(-10.0, -1.0, 1.0, 5) == -1.0

    def test_error_bounded_by_half_step(self):
        bits = 5
        step = 4.0 / ((1 << bits) - 2)
        xs = np.linspace(-2, 2, 1001)
        err = np.abs(quantize_value(xs, -2.0, 2.0, bits) - xs)
        assert err.max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self):
        xs = np.linspace(-1, 1, 257)
        e4 = np.abs(quantize_value(xs, -1, 1, 4) - xs).max()
        e8 = np.abs(quantize_value(xs, -1, 1, 8) - xs).max()
        assert e8 < e4

    def test_guards(self):
        with pytest.raises(ValidationError):
            quantize_value(0.0, 1.0, -1.0, 5)
        with pytest.raises(ValidationError):
            quantize_value(0.0, -1.0, 1.0, 1)


class TestRescale:
    def test_in_range_untouched(self):
        m = IsingModel([0.5], {})
        scaled, factor = rescale_to_ranges(m)
        assert factor == 1.0
        assert scaled.h[0] == 0.5

    def test_large_h_scaled(self):
        m = IsingModel([4.0, -4.0], {(0, 1): 0.5})
        scaled, factor = rescale_to_ranges(m, h_range=(-2, 2), j_range=(-1, 1))
        assert factor == pytest.approx(0.5)
        assert scaled.max_abs_h == pytest.approx(2.0)
        assert scaled.coupling_dict()[(0, 1)] == pytest.approx(0.25)

    def test_large_j_scaled(self):
        m = IsingModel([0.0, 0.0], {(0, 1): 5.0})
        scaled, factor = rescale_to_ranges(m)
        assert factor == pytest.approx(0.2)
        assert scaled.max_abs_j == pytest.approx(1.0)

    def test_never_scales_up(self):
        m = IsingModel([0.001], {})
        _, factor = rescale_to_ranges(m)
        assert factor == 1.0

    def test_ground_state_preserved(self):
        from repro.qubo import brute_force_ising

        m = random_ising(6, rng=2, h_scale=5.0, j_scale=5.0)
        scaled, _ = rescale_to_ranges(m)
        s1, _ = brute_force_ising(m)
        s2, _ = brute_force_ising(scaled)
        assert np.array_equal(s1[0], s2[0])


class TestProgramIsing:
    def test_report_fields(self):
        m = random_ising(5, rng=1, h_scale=3.0)
        programmed, report = program_ising(m)
        assert 0 < report.scale <= 1.0
        assert report.max_h_error >= 0.0
        assert programmed.num_spins == 5

    def test_zero_model_unchanged(self):
        m = IsingModel(np.zeros(4), {})
        programmed, report = program_ising(m)
        assert np.all(programmed.h == 0.0)
        assert report.max_h_error == 0.0

    def test_parameters_within_ranges(self):
        m = random_ising(8, rng=4, h_scale=10.0, j_scale=10.0)
        programmed, _ = program_ising(m)
        lo, hi = DW2_PROPERTIES.h_range
        assert programmed.h.min() >= lo and programmed.h.max() <= hi
        _, _, vals = programmed.coupling_arrays()
        jlo, jhi = DW2_PROPERTIES.j_range
        assert vals.min() >= jlo and vals.max() <= jhi

    def test_precision_bits_guard(self):
        with pytest.raises(HardwareError):
            DeviceProperties(precision_bits=1)

    def test_bad_range_guard(self):
        with pytest.raises(HardwareError):
            DeviceProperties(h_range=(1.0, -1.0))

    def test_nonfinite_range_guard(self):
        """Regression: `nan < hi` is False (caught), but (-inf, inf) passed
        the `lo < hi` check; ranges must be finite."""
        with pytest.raises(HardwareError, match="finite"):
            DeviceProperties(h_range=(float("-inf"), float("inf")))
        with pytest.raises(HardwareError, match="finite"):
            DeviceProperties(j_range=(-1.0, float("inf")))
        with pytest.raises(HardwareError, match="finite"):
            DeviceProperties(h_range=(float("nan"), 1.0))

    def test_high_precision_small_distortion(self):
        m = random_ising(6, rng=7)
        _, low = program_ising(m, DeviceProperties(precision_bits=4))
        _, high = program_ising(m, DeviceProperties(precision_bits=10))
        assert high.max_h_error <= low.max_h_error
        assert high.max_j_error <= low.max_j_error
