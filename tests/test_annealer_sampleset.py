"""Tests for SampleSet: the Stage-3 readout container."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealer import SampleSet
from repro.exceptions import ValidationError
from repro.qubo import IsingModel, random_ising


@pytest.fixture
def model() -> IsingModel:
    return IsingModel([0.5, -0.25], {(0, 1): 1.0})


class TestFromSamples:
    def test_sorted_by_energy(self, model, rng):
        S = (rng.integers(0, 2, size=(20, 2)) * 2 - 1).astype(np.int8)
        ss = SampleSet.from_samples(model, S)
        assert np.all(np.diff(ss.energies) >= 0)
        assert ss.num_reads == 20

    def test_energies_match_model(self, model):
        S = np.array([[1, 1], [-1, 1]], dtype=np.int8)
        ss = SampleSet.from_samples(model, S)
        for row, e in zip(ss.samples, ss.energies):
            assert model.energy(row) == pytest.approx(e)

    def test_rejects_non_spin_values(self, model):
        with pytest.raises(ValidationError, match="-1/\\+1"):
            SampleSet.from_samples(model, np.zeros((2, 2), dtype=np.int8))

    def test_rejects_bad_shape(self, model):
        with pytest.raises(ValidationError):
            SampleSet.from_samples(model, np.ones(4, dtype=np.int8))

    def test_unsorted_construction_rejected(self):
        with pytest.raises(ValidationError, match="sorted"):
            SampleSet(
                np.ones((2, 1), dtype=np.int8),
                np.array([2.0, 1.0]),
                np.ones(2, dtype=np.int64),
            )

    def test_empty(self):
        ss = SampleSet.empty(3)
        assert ss.num_rows == 0 and ss.num_reads == 0
        with pytest.raises(ValidationError):
            _ = ss.first


class TestAggregation:
    def test_aggregated_multiplicities(self, model):
        S = np.array([[1, 1], [1, 1], [-1, -1]], dtype=np.int8)
        agg = SampleSet.from_samples(model, S).aggregated()
        assert agg.num_rows == 2
        assert agg.num_reads == 3
        # Lowest-energy row first; occurrences preserved.
        assert np.all(np.diff(agg.energies) >= 0)
        assert sorted(agg.num_occurrences.tolist()) == [1, 2]

    def test_aggregated_idempotent(self, model, rng):
        S = (rng.integers(0, 2, size=(30, 2)) * 2 - 1).astype(np.int8)
        agg = SampleSet.from_samples(model, S).aggregated()
        agg2 = agg.aggregated()
        assert agg2.num_rows == agg.num_rows
        assert np.array_equal(agg2.num_occurrences, agg.num_occurrences)

    def test_truncated(self, model, rng):
        S = (rng.integers(0, 2, size=(10, 2)) * 2 - 1).astype(np.int8)
        ss = SampleSet.from_samples(model, S).truncated(3)
        assert ss.num_rows == 3

    def test_truncate_guard(self, model):
        ss = SampleSet.from_samples(model, np.ones((1, 2), dtype=np.int8))
        with pytest.raises(ValidationError):
            ss.truncated(-1)


class TestStatistics:
    def test_first_and_lowest(self, model, rng):
        S = (rng.integers(0, 2, size=(50, 2)) * 2 - 1).astype(np.int8)
        ss = SampleSet.from_samples(model, S)
        state, energy = ss.first
        assert energy == ss.lowest_energy
        assert model.energy(state) == pytest.approx(energy)

    def test_ground_state_probability(self):
        m = IsingModel([1.0], {})  # ground state: s = -1, E = -1
        S = np.array([[-1], [-1], [1], [-1]], dtype=np.int8)
        ss = SampleSet.from_samples(m, S)
        assert ss.ground_state_probability(-1.0) == pytest.approx(0.75)

    def test_ground_probability_counts_occurrences(self):
        m = IsingModel([1.0], {})
        ss = SampleSet(
            np.array([[-1], [1]], dtype=np.int8),
            np.array([-1.0, 1.0]),
            np.array([9, 1], dtype=np.int64),
        )
        assert ss.ground_state_probability(-1.0) == pytest.approx(0.9)

    def test_ground_probability_empty_rejected(self):
        with pytest.raises(ValidationError):
            SampleSet.empty(1).ground_state_probability(0.0)


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_aggregation_preserves_reads_and_sorting(k, seed):
    gen = np.random.default_rng(seed)
    m = random_ising(4, rng=seed)
    S = (gen.integers(0, 2, size=(k, 4)) * 2 - 1).astype(np.int8)
    ss = SampleSet.from_samples(m, S)
    agg = ss.aggregated()
    assert agg.num_reads == k
    assert np.all(np.diff(agg.energies) >= 0)
    assert agg.lowest_energy == pytest.approx(ss.lowest_energy)
    # Distinct rows only.
    rows = {tuple(r) for r in agg.samples.tolist()}
    assert len(rows) == agg.num_rows
