"""Mutation testing of the embedding validator.

Starts from known-valid embeddings and applies targeted corruptions; the
validator must reject every corrupted variant.  This guards the property
the whole middleware stack leans on: if `verify_embedding` passes, the
parameter-setting and decoding layers are safe.
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    Embedding,
    clique_embedding,
    find_embedding_cmr,
    is_valid_embedding,
    minimal_clique_topology,
    verify_embedding,
)


@pytest.fixture(scope="module")
def valid_setup():
    n = 6
    topo = minimal_clique_topology(n)
    emb = clique_embedding(n, topo)
    source = nx.complete_graph(n)
    hardware = topo.graph()
    verify_embedding(emb, source, hardware)
    return emb, source, hardware


class TestCorruptions:
    def test_dropping_a_whole_chain_rejected(self, valid_setup):
        emb, source, hardware = valid_setup
        corrupted = Embedding(emb.chains[:-1])
        assert not is_valid_embedding(corrupted, source, hardware)

    def test_emptying_a_chain_rejected(self, valid_setup):
        emb, source, hardware = valid_setup
        chains = list(emb.chains)
        chains[0] = ()
        assert not is_valid_embedding(Embedding(tuple(chains)), source, hardware)

    def test_stealing_a_qubit_creates_overlap(self, valid_setup):
        emb, source, hardware = valid_setup
        chains = [list(c) for c in emb.chains]
        chains[0].append(chains[1][0])  # chain 0 now shares a qubit with chain 1
        corrupted = Embedding(tuple(tuple(c) for c in chains))
        assert not is_valid_embedding(corrupted, source, hardware)

    def test_teleporting_a_qubit_disconnects_chain(self, valid_setup):
        emb, source, hardware = valid_setup
        used = emb.used_qubits()
        far = max(q for q in hardware.nodes() if q not in used)
        chains = [list(c) for c in emb.chains]
        # Replace a chain endpoint with a distant unused qubit.
        chains[0][0] = far
        corrupted = Embedding(tuple(tuple(c) for c in chains))
        assert not is_valid_embedding(corrupted, source, hardware)

    def test_phantom_qubit_rejected(self, valid_setup):
        emb, source, hardware = valid_setup
        chains = [list(c) for c in emb.chains]
        chains[0].append(10**9)
        corrupted = Embedding(tuple(tuple(c) for c in chains))
        assert not is_valid_embedding(corrupted, source, hardware)

    def test_extra_logical_edge_detected(self, valid_setup):
        """Validating against a denser source than the embedding serves."""
        emb, _, hardware = valid_setup
        n = emb.num_logical
        bigger = nx.complete_graph(n)
        bigger.add_node(n)
        bigger.add_edge(0, n)
        assert not is_valid_embedding(emb, bigger, hardware)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    victim=st.integers(min_value=0, max_value=7),
)
def test_property_single_qubit_deletion_detected(seed, victim):
    """Deleting any single qubit from any chain of a *tight* CMR embedding is
    caught (the chain disconnects, an edge uncovers, or the chain empties) —
    or, if the deleted qubit was redundant, the result still verifies.
    Either way the validator never crashes and classifies consistently."""
    from repro.hardware import ChimeraTopology

    topo = ChimeraTopology(3, 3, 4)
    source = nx.cycle_graph(8)
    emb = find_embedding_cmr(source, topo.graph(), rng=seed)
    chains = [list(c) for c in emb.chains]
    v = victim % len(chains)
    if not chains[v]:
        return
    removed = chains[v].pop(0)
    corrupted = Embedding(tuple(tuple(c) for c in chains))
    ok = is_valid_embedding(corrupted, source, topo.graph())
    if ok:
        # Deletion was harmless only if the remaining chain still covers
        # everything; re-verify strictly to ensure consistency.
        verify_embedding(corrupted, source, topo.graph())
    else:
        assert removed not in corrupted.chains[v]
