"""Tests for chain decoding (majority vote, discard, break statistics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import chain_break_fraction, decode_samples
from repro.exceptions import ValidationError


class TestMajority:
    def test_unanimous(self):
        samples = np.array([[1, 1, -1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1), (2, 3)])
        assert out.tolist() == [[1, -1]]

    def test_majority_wins(self):
        samples = np.array([[1, 1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1, 2)])
        assert out.tolist() == [[1]]

    def test_tie_breaks_positive(self):
        samples = np.array([[1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1)])
        assert out.tolist() == [[1]]

    def test_multiple_reads(self):
        samples = np.array([[1, 1], [-1, -1], [1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1)])
        assert out.tolist() == [[1], [-1], [1]]

    def test_column_subset(self):
        # Physical register larger than the used chains.
        samples = np.tile(np.array([[1, -1, 1, -1, 1]], dtype=np.int8), (2, 1))
        out = decode_samples(samples, [(2,), (3,)])
        assert out.tolist() == [[1, -1], [1, -1]]


class TestDiscard:
    def test_broken_rows_dropped(self):
        samples = np.array([[1, 1], [1, -1], [-1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1)], strategy="discard")
        assert out.tolist() == [[1], [-1]]

    def test_all_broken_yields_empty(self):
        samples = np.array([[1, -1]], dtype=np.int8)
        out = decode_samples(samples, [(0, 1)], strategy="discard")
        assert out.shape == (0, 1)


class TestValidation:
    def test_bad_strategy(self):
        with pytest.raises(ValidationError, match="strategy"):
            decode_samples(np.ones((1, 2), dtype=np.int8), [(0,)], strategy="vote")

    def test_bad_dims(self):
        with pytest.raises(ValidationError, match="2-D"):
            decode_samples(np.ones(3, dtype=np.int8), [(0,)])

    def test_empty_chain(self):
        with pytest.raises(ValidationError, match="empty"):
            decode_samples(np.ones((1, 2), dtype=np.int8), [()])

    def test_out_of_range_chain(self):
        with pytest.raises(ValidationError, match="outside"):
            decode_samples(np.ones((1, 2), dtype=np.int8), [(5,)])


class TestBreakFraction:
    def test_no_breaks(self):
        samples = np.array([[1, 1, -1, -1]], dtype=np.int8)
        assert chain_break_fraction(samples, [(0, 1), (2, 3)]) == 0.0

    def test_all_broken(self):
        samples = np.array([[1, -1, 1, -1]], dtype=np.int8)
        assert chain_break_fraction(samples, [(0, 1), (2, 3)]) == 1.0

    def test_partial(self):
        samples = np.array([[1, 1, 1, -1], [1, 1, -1, -1]], dtype=np.int8)
        # chains: (0,1) never broken; (2,3) broken in first read only.
        assert chain_break_fraction(samples, [(0, 1), (2, 3)]) == pytest.approx(0.25)

    def test_empty_inputs(self):
        assert chain_break_fraction(np.zeros((0, 4), dtype=np.int8), [(0, 1)]) == 0.0
        assert chain_break_fraction(np.ones((2, 4), dtype=np.int8), []) == 0.0

    def test_unit_chains_never_break(self):
        samples = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        assert chain_break_fraction(samples, [(0,), (1,)]) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_decode_respects_majority(k, seed):
    gen = np.random.default_rng(seed)
    chains = [(0, 1, 2), (3, 4)]
    samples = (gen.integers(0, 2, size=(k, 5)) * 2 - 1).astype(np.int8)
    out = decode_samples(samples, chains)
    for r in range(k):
        for v, chain in enumerate(chains):
            s = samples[r, list(chain)].sum()
            expected = 1 if s >= 0 else -1
            assert out[r, v] == expected
