"""Tests for the paper's Eqs. (4)-(5): exact QUBO <-> Ising conversions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qubo import (
    IsingModel,
    Qubo,
    conversion_flop_count,
    ising_to_qubo,
    paper_ising_parameters,
    qubo_to_ising,
    random_qubo,
)


def _all_binary(n: int) -> np.ndarray:
    return np.array(
        [[(idx >> i) & 1 for i in range(n)] for idx in range(1 << n)], dtype=float
    )


class TestQuboToIsing:
    def test_energy_preserved_exhaustively(self):
        q = random_qubo(6, density=0.7, rng=0)
        m = qubo_to_ising(q)
        B = _all_binary(6)
        assert np.allclose(q.energies(B), m.energies(2 * B - 1))

    def test_offset_carried(self):
        q = Qubo([1.0], {}, offset=5.0)
        m = qubo_to_ising(q)
        assert m.energy([1]) == pytest.approx(q.energy([1]))
        assert m.energy([-1]) == pytest.approx(q.energy([0]))

    def test_paper_formula_values(self):
        # h_i = lin_i/2 + quad_ij/4, J_ij = quad_ij/4 (Eqs. 4-5).
        q = Qubo([2.0, 0.0], {(0, 1): 4.0})
        m = qubo_to_ising(q)
        assert m.h[0] == pytest.approx(2.0 / 2 + 4.0 / 4)
        assert m.h[1] == pytest.approx(0.0 / 2 + 4.0 / 4)
        assert m.coupling_dict()[(0, 1)] == pytest.approx(4.0 / 4)

    def test_ground_state_preserved(self):
        from repro.qubo import brute_force_ising, brute_force_qubo

        q = random_qubo(8, density=0.5, rng=3)
        m = qubo_to_ising(q)
        sb, eb = brute_force_qubo(q)
        ss, es = brute_force_ising(m)
        assert eb[0] == pytest.approx(es[0])
        assert np.array_equal((ss[0] + 1) // 2, sb[0])


class TestIsingToQubo:
    def test_energy_preserved_exhaustively(self):
        m = IsingModel([0.3, -0.7, 0.1], {(0, 1): 1.2, (1, 2): -0.4}, offset=0.9)
        q = ising_to_qubo(m)
        B = _all_binary(3)
        assert np.allclose(q.energies(B), m.energies(2 * B - 1))

    def test_round_trip_identity(self):
        q = random_qubo(7, density=0.6, rng=1)
        q2 = ising_to_qubo(qubo_to_ising(q))
        assert np.allclose(q2.linear, q.linear)
        assert q2.quadratic_dict().keys() == q.quadratic_dict().keys()
        for k, v in q.quadratic_dict().items():
            assert q2.quadratic_dict()[k] == pytest.approx(v)
        assert q2.offset == pytest.approx(q.offset)

    def test_reverse_round_trip_identity(self):
        m = IsingModel([1.0, -1.0], {(0, 1): 0.5}, offset=-2.0)
        m2 = qubo_to_ising(ising_to_qubo(m))
        assert np.allclose(m2.h, m.h)
        assert m2.coupling_dict()[(0, 1)] == pytest.approx(0.5)
        assert m2.offset == pytest.approx(m.offset)


class TestPaperLiteral:
    def test_matches_library_conversion_for_upper_triangle(self):
        # Interpret a symmetric matrix in the upper-triangle convention.
        rng = np.random.default_rng(5)
        A = rng.normal(size=(5, 5))
        Q = np.triu(A) + np.triu(A, 1).T  # symmetric
        h, J = paper_ising_parameters(Q)
        q = Qubo(np.diag(Q).copy(), {
            (i, j): Q[i, j] for i in range(5) for j in range(i + 1, 5)
        })
        m = qubo_to_ising(q)
        # paper h uses the symmetric row sum = half from each triangle
        assert np.allclose(h, m.h)
        for i, j, v in m.iter_couplings():
            assert J[i, j] == pytest.approx(v)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            paper_ising_parameters(np.zeros((2, 3)))


class TestFlopCount:
    def test_cubic(self):
        assert conversion_flop_count(10) == 1000
        assert conversion_flop_count(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            conversion_flop_count(-1)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=7),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_conversion_preserves_all_energies(n, density, seed):
    """E_qubo(b) == E_ising(2b - 1) for every assignment (the core invariant)."""
    q = random_qubo(n, density=density, rng=seed)
    m = qubo_to_ising(q)
    B = _all_binary(n)
    assert np.allclose(q.energies(B), m.energies(2 * B - 1), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_round_trip_is_identity(n, seed):
    q = random_qubo(n, density=0.8, rng=seed)
    q2 = ising_to_qubo(qubo_to_ising(q))
    B = _all_binary(n)
    assert np.allclose(q.energies(B), q2.energies(B), atol=1e-9)
