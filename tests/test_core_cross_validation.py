"""Cross-validation: closed-form stage models == ASPEN-evaluated listings.

The strongest correctness pin in the suite: two independent implementations
of the paper's performance models (direct closed forms and the parsed ASPEN
artifacts of Figs. 6-8 evaluated on the Fig.-5 machine) must agree to
floating-point precision across the full parameter ranges of Fig. 9.
"""

from __future__ import annotations

import pytest

from repro.core import AspenStageModels, Stage1Model, Stage2Model, Stage3Model
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def aspen() -> AspenStageModels:
    return AspenStageModels()


class TestStage1Agreement:
    @pytest.mark.parametrize("lps", [0, 1, 2, 5, 10, 20, 30, 50, 75, 100])
    def test_total_matches(self, aspen, lps):
        closed = Stage1Model().seconds(lps)
        evaluated = aspen.stage1_seconds(lps)
        assert closed == pytest.approx(evaluated, rel=1e-12)

    def test_breakdown_matches_per_resource(self, aspen):
        lps = 40
        b = Stage1Model().breakdown(lps)
        report = aspen.stage1_report(lps)
        per = report.per_resource()
        assert per["flops"] == pytest.approx(
            b.ising_generation + b.parameter_setting + b.embedding_flops, rel=1e-12
        )
        assert per["loads"] == pytest.approx(b.input_loads, rel=1e-12)
        assert per["stores"] == pytest.approx(b.output_stores, rel=1e-12)
        assert per["intracomm"] == pytest.approx(b.intracomm, rel=1e-12)
        assert per["microseconds"] == pytest.approx(b.processor_initialize, rel=1e-12)


class TestStage2Agreement:
    @pytest.mark.parametrize(
        "accuracy_pct,success",
        [(50.0, 0.7), (90.0, 0.7), (99.0, 0.7), (99.9, 0.7), (99.99, 0.7),
         (99.0, 0.61), (99.0, 0.9), (99.99, 0.9999)],
    )
    def test_total_matches(self, aspen, accuracy_pct, success):
        closed = Stage2Model().seconds(accuracy_pct / 100.0, success)
        evaluated = aspen.stage2_seconds(accuracy_pct, success)
        assert closed == pytest.approx(evaluated, rel=1e-12)

    def test_repetition_counts_match(self, aspen):
        report = aspen.stage2_report(99.0, 0.7)
        quops = next(c for c in report.clauses if c.resource == "QuOps")
        assert quops.amount == Stage2Model().repetitions(0.99, 0.7)

    def test_accuracy_domain_guard(self, aspen):
        with pytest.raises(ValidationError):
            aspen.stage2_seconds(100.0, 0.7)
        with pytest.raises(ValidationError):
            aspen.stage2_seconds(50.0, 1.5)


class TestStage3Agreement:
    @pytest.mark.parametrize("lps", [0, 1, 10, 25, 50, 100])
    def test_total_matches(self, aspen, lps):
        closed = Stage3Model().seconds(lps)
        evaluated = aspen.stage3_seconds(lps)
        assert closed == pytest.approx(evaluated, rel=1e-12)

    def test_custom_probabilities_match(self, aspen):
        closed = Stage3Model().seconds(30, accuracy=0.999, success=0.5)
        evaluated = aspen.stage3_seconds(30, accuracy=0.999, success=0.5)
        assert closed == pytest.approx(evaluated, rel=1e-12)

    def test_size_guard(self, aspen):
        with pytest.raises(ValidationError):
            aspen.stage3_seconds(-1)
