"""Tests for the Cai-Macready-Roy heuristic embedder."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    CmrParams,
    cmr_embedding_ops,
    find_embedding_cmr,
    verify_embedding,
)
from repro.exceptions import EmbeddingError
from repro.hardware import ChimeraTopology


class TestBasics:
    def test_empty_graph(self, cell):
        emb = find_embedding_cmr(nx.empty_graph(0), cell.graph(), rng=0)
        assert emb.num_logical == 0

    def test_single_vertex(self, cell):
        emb = find_embedding_cmr(nx.empty_graph(1), cell.graph(), rng=0)
        assert emb.num_logical == 1
        assert emb.chain_lengths() == [1]

    def test_single_edge(self, cell):
        source = nx.path_graph(2)
        emb = find_embedding_cmr(source, cell.graph(), rng=0)
        verify_embedding(emb, source, cell.graph())

    def test_non_canonical_labels_rejected(self, cell):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(EmbeddingError, match="range"):
            find_embedding_cmr(g, cell.graph())

    def test_too_many_vertices_rejected(self, cell):
        with pytest.raises(EmbeddingError, match="<"):
            find_embedding_cmr(nx.empty_graph(100), cell.graph())

    def test_disconnected_hardware_fails_cleanly(self):
        hardware = nx.Graph()
        hardware.add_edge(0, 1)
        hardware.add_edge(10, 11)  # second component
        source = nx.complete_graph(3)
        with pytest.raises(EmbeddingError):
            find_embedding_cmr(source, hardware, params=CmrParams(max_tries=2), rng=0)

    def test_diagnostics(self, small_chimera):
        source = nx.cycle_graph(5)
        emb, diag = find_embedding_cmr(
            source, small_chimera.graph(), rng=0, return_diagnostics=True
        )
        verify_embedding(emb, source, small_chimera.graph())
        assert diag.tries >= 1
        assert diag.evaluations >= 5
        assert diag.num_physical == emb.num_physical
        assert diag.max_chain_length == emb.max_chain_length

    def test_reproducible_with_seed(self, small_chimera):
        source = nx.cycle_graph(6)
        a = find_embedding_cmr(source, small_chimera.graph(), rng=42)
        b = find_embedding_cmr(source, small_chimera.graph(), rng=42)
        assert a == b


class TestParams:
    def test_bad_tries(self):
        with pytest.raises(EmbeddingError):
            CmrParams(max_tries=0)

    def test_bad_passes(self):
        with pytest.raises(EmbeddingError):
            CmrParams(max_passes=0)

    def test_bad_penalty_base(self):
        with pytest.raises(EmbeddingError):
            CmrParams(penalty_base=1.0)

    def test_bad_history_base(self):
        with pytest.raises(EmbeddingError):
            CmrParams(history_base=0.5)


class TestStructured:
    @pytest.mark.parametrize(
        "make_source",
        [
            lambda: nx.cycle_graph(8),
            lambda: nx.path_graph(12),
            lambda: nx.star_graph(5),
            lambda: nx.complete_bipartite_graph(3, 3),
            lambda: nx.grid_2d_graph(3, 3),
            lambda: nx.petersen_graph(),
        ],
        ids=["cycle8", "path12", "star5", "K33", "grid3x3", "petersen"],
    )
    def test_classic_graphs_embed(self, make_source, small_chimera):
        source = nx.convert_node_labels_to_integers(make_source())
        emb = find_embedding_cmr(source, small_chimera.graph(), rng=1)
        verify_embedding(emb, source, small_chimera.graph())

    def test_complete_graph_k8(self, small_chimera):
        source = nx.complete_graph(8)
        emb = find_embedding_cmr(source, small_chimera.graph(), rng=0)
        verify_embedding(emb, source, small_chimera.graph())

    def test_faulty_hardware(self, small_chimera):
        from repro.hardware import random_faults

        faults = random_faults(small_chimera, qubit_fault_rate=0.05, rng=3)
        working = small_chimera.working_graph(faults)
        source = nx.cycle_graph(6)
        emb = find_embedding_cmr(source, working, rng=2)
        verify_embedding(emb, source, working)
        for q in emb.used_qubits():
            assert q not in faults.dead_qubits

    def test_sparse_random_graph(self):
        topo = ChimeraTopology(6, 6, 4)
        source = nx.gnp_random_graph(20, 0.2, seed=5)
        emb = find_embedding_cmr(source, topo.graph(), rng=5)
        verify_embedding(emb, source, topo.graph())

    def test_uses_fewer_qubits_than_clique_embedding(self):
        """The paper's motivation for CMR: input-adaptive qubit usage."""
        from repro.embedding import clique_qubit_cost

        topo = ChimeraTopology(6, 6, 4)
        source = nx.cycle_graph(20)  # very sparse
        emb = find_embedding_cmr(source, topo.graph(), rng=0)
        assert emb.num_physical < clique_qubit_cost(20)


class TestOpsFormula:
    def test_paper_constants(self):
        """Fig. 6: EmbeddingOps with NG = 1152, EG = 3360, natural log."""
        import math

        nh, eh = 30, 435
        ng, eg = 1152, 3360
        expected = (eg + ng * math.log(ng)) * (2 * eh) * nh * ng
        assert cmr_embedding_ops(nh, eh, ng, eg) == pytest.approx(expected)

    def test_zero_sizes(self):
        assert cmr_embedding_ops(0, 0, 1, 0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(EmbeddingError):
            cmr_embedding_ops(-1, 0, 1, 1)

    def test_cubic_scaling_in_problem_size(self):
        """With NH = n and EH = n(n-1)/2 the count grows as n^3."""
        def ops(n: int) -> float:
            return cmr_embedding_ops(n, n * (n - 1) // 2, 1152, 3360)

        assert ops(60) / ops(30) == pytest.approx(
            (60 * 60 * 59) / (30 * 30 * 29), rel=1e-12
        )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_random_tree_embeds_validly(seed):
    """Random trees always embed, and the result always verifies."""
    topo = ChimeraTopology(3, 3, 4)
    source = nx.random_labeled_tree(10, seed=seed)
    emb = find_embedding_cmr(source, topo.graph(), rng=seed)
    verify_embedding(emb, source, topo.graph())
