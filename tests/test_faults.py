"""Unit tests for the deterministic fault-injection plan (``repro.faults``).

The fault layer's whole value is that chaos is *reproducible*: the same
plan fires the same faults at the same (site, key, attempt) coordinates
every run, probability draws come from the repo's spawn-stream discipline
in their own key namespace, and plans round-trip through JSON (the
``REPRO_FAULTS`` env hook) without drift.  These tests pin all of that
without touching the executor or the service — the integration behavior
lives in ``tests/test_executor_resilience.py`` and
``tests/test_service_durability.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.faults import (
    FAULT_SITES,
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultStats,
    SITE_CACHE_READ,
    SITE_HTTP_SLOW,
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
)

pytestmark = pytest.mark.faults


# --------------------------------------------------------------------- #
# Rule validation and serialization
# --------------------------------------------------------------------- #
class TestFaultRule:
    def test_defaults(self):
        rule = FaultRule(site=SITE_SHARD_EVAL)
        assert rule.keys is None and rule.times == 1
        assert rule.probability == 1.0 and rule.effect == "raise"

    def test_rejects_unknown_site(self):
        with pytest.raises(ValidationError, match="unknown fault site"):
            FaultRule(site="disk-on-fire")

    def test_rejects_bad_times_probability_effect_delay(self):
        with pytest.raises(ValidationError, match="times"):
            FaultRule(site=SITE_SHARD_EVAL, times=0)
        with pytest.raises(ValidationError, match="probability"):
            FaultRule(site=SITE_SHARD_EVAL, probability=1.5)
        with pytest.raises(ValidationError, match="effect"):
            FaultRule(site=SITE_CACHE_READ, effect="explode")
        with pytest.raises(ValidationError, match="delay_s"):
            FaultRule(site=SITE_HTTP_SLOW, delay_s=-1.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown fault rule field"):
            FaultRule.from_dict({"site": SITE_SHARD_EVAL, "bogus": 1})
        with pytest.raises(ValidationError, match="requires a 'site'"):
            FaultRule.from_dict({"times": 2})
        with pytest.raises(ValidationError, match="mapping"):
            FaultRule.from_dict([SITE_SHARD_EVAL])

    def test_roundtrip_through_dict(self):
        original = FaultRule(
            site=SITE_CACHE_READ, keys=(0, 3), times=2, probability=0.5, effect="corrupt"
        )
        assert FaultRule.from_dict(original.to_dict()) == original
        slow = FaultRule(site=SITE_HTTP_SLOW, delay_s=0.125)
        assert FaultRule.from_dict(slow.to_dict()).delay_s == 0.125

    def test_key_matching(self):
        assert FaultRule(site=SITE_SHARD_EVAL).matches_key(7)
        scoped = FaultRule(site=SITE_SHARD_EVAL, keys=(1, 2))
        assert scoped.matches_key(1) and not scoped.matches_key(0)


# --------------------------------------------------------------------- #
# Plan gating: attempt-gated determinism
# --------------------------------------------------------------------- #
class TestPlanFires:
    def test_fires_exactly_times_attempts_then_stops(self):
        plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(0,), times=2)])
        assert plan.fires(SITE_SHARD_EVAL, key=0, attempt=0) is not None
        assert plan.fires(SITE_SHARD_EVAL, key=0, attempt=1) is not None
        assert plan.fires(SITE_SHARD_EVAL, key=0, attempt=2) is None
        assert plan.fires(SITE_SHARD_EVAL, key=1, attempt=0) is None  # wrong key
        assert plan.fires(SITE_WORKER_DEATH, key=0, attempt=0) is None  # wrong site

    def test_first_matching_rule_wins(self):
        corrupt = FaultRule(site=SITE_CACHE_READ, effect="corrupt")
        unreadable = FaultRule(site=SITE_CACHE_READ, effect="raise")
        plan = FaultPlan([corrupt, unreadable])
        assert plan.fires(SITE_CACHE_READ, key=0, attempt=0) is corrupt

    def test_unknown_site_query_is_loud(self):
        plan = FaultPlan([])
        with pytest.raises(ValidationError, match="unknown fault site"):
            plan.fires("nonsense")

    def test_probability_draws_are_deterministic_per_seed(self):
        rule = FaultRule(site=SITE_SHARD_EVAL, times=1, probability=0.5)
        decisions = [
            tuple(
                FaultPlan([rule], seed=seed).fires(SITE_SHARD_EVAL, key=k) is not None
                for k in range(64)
            )
            for seed in (7, 7, 8)
        ]
        assert decisions[0] == decisions[1]     # same seed -> same schedule
        assert decisions[0] != decisions[2]     # different seed -> different schedule
        hits = sum(decisions[0])
        assert 0 < hits < 64                    # p=0.5 actually gates something

    def test_probability_zero_never_fires_and_one_always_fires(self):
        never = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, probability=0.0)])
        always = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, probability=1.0)])
        assert all(never.fires(SITE_SHARD_EVAL, key=k) is None for k in range(32))
        assert all(always.fires(SITE_SHARD_EVAL, key=k) is not None for k in range(32))


# --------------------------------------------------------------------- #
# Counted sites
# --------------------------------------------------------------------- #
class TestCountedFires:
    def test_counter_advances_per_site_and_key(self):
        plan = FaultPlan([FaultRule(site=SITE_CACHE_READ, times=2)])
        assert plan.fires_counted(SITE_CACHE_READ, key=0) is not None
        assert plan.fires_counted(SITE_CACHE_READ, key=0) is not None
        assert plan.fires_counted(SITE_CACHE_READ, key=0) is None   # times exhausted
        assert plan.fires_counted(SITE_CACHE_READ, key=1) is not None  # own counter

    def test_counter_is_thread_safe(self):
        plan = FaultPlan([FaultRule(site=SITE_CACHE_READ, times=10)])
        fired = []

        def hammer():
            for _ in range(50):
                fired.append(plan.fires_counted(SITE_CACHE_READ, key=0) is not None)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly the first `times` invocations fired, no lost updates.
        assert sum(fired) == 10


# --------------------------------------------------------------------- #
# Plan serialization and the env hook
# --------------------------------------------------------------------- #
class TestPlanSerialization:
    def test_roundtrip_and_sites_view(self):
        plan = FaultPlan(
            [FaultRule(site=SITE_SHARD_EVAL, keys=(1,)), FaultRule(site=SITE_CACHE_READ)],
            seed=42,
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 42
        assert clone.rules == plan.rules
        assert plan.sites == {SITE_SHARD_EVAL, SITE_CACHE_READ}

    def test_from_dict_accepts_bare_rule_list(self):
        plan = FaultPlan.from_dict([{"site": SITE_SHARD_EVAL}])
        assert plan.seed == 0 and plan.sites == {SITE_SHARD_EVAL}

    def test_from_dict_rejects_junk(self):
        with pytest.raises(ValidationError, match="unknown fault plan field"):
            FaultPlan.from_dict({"seed": 0, "rules": [], "extra": 1})
        with pytest.raises(ValidationError, match="mapping or a list"):
            FaultPlan.from_dict("shard-eval")

    def test_from_json_rejects_invalid_json(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_from_env(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV_VAR: "  "}) is None
        plan = FaultPlan.from_env(
            {FAULTS_ENV_VAR: '{"seed": 3, "rules": [{"site": "shard-eval"}]}'}
        )
        assert plan is not None and plan.seed == 3
        with pytest.raises(ValidationError):
            FaultPlan.from_env({FAULTS_ENV_VAR: "not json"})

    def test_counters_do_not_travel_across_serialization(self):
        plan = FaultPlan([FaultRule(site=SITE_CACHE_READ, times=1)])
        assert plan.fires_counted(SITE_CACHE_READ, key=0) is not None
        clone = FaultPlan.from_dict(plan.to_dict())
        # The clone starts fresh: counters are process-local by design.
        assert clone.fires_counted(SITE_CACHE_READ, key=0) is not None


# --------------------------------------------------------------------- #
# Stats and the exception type
# --------------------------------------------------------------------- #
def test_fault_stats_clean_flag():
    stats = FaultStats()
    assert stats.clean
    stats.shard_retries += 1
    assert not stats.clean
    assert stats.as_dict()["shard_retries"] == 1
    assert set(stats.as_dict()) == {
        "shard_failures", "shard_retries", "recovered_shards", "worker_deaths",
        "pool_restarts", "degraded_inline_shards", "cache_read_faults",
        "cache_write_faults",
    }


def test_fault_injected_is_a_repro_error():
    from repro.exceptions import ReproError

    assert issubclass(FaultInjected, ReproError)
    assert len(FAULT_SITES) == len(set(FAULT_SITES)) == 8
