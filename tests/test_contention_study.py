"""End-to-end tests for contended studies: axes, schema v4, byte identity.

The PR's acceptance criterion: a contended study sweeping
``arrival_rate x sessions x queue_policy`` over the DES backend produces
byte-identical artifacts across worker counts, shard orders, the
scalar/vectorized paths, the distributed coordinator/worker topology,
and cold-vs-cache-served runs — while the contention columns stay NaN
for rows evaluated by backends without the contention axes.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.studies import (
    ScenarioSpec,
    StudyCache,
    StudyResults,
    contention_summary,
    run_study,
    shard_ranges,
)
from repro.studies.results import ARTIFACT_SCHEMA_VERSION

CONTENTION_COLUMNS = (
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "queue_wait_s",
    "utilization",
)

SPEC = ScenarioSpec(
    name="contended",
    axes={
        "backend": ["des"],
        "queue_policy": ["fifo", "priority", "round-robin"],
        "sessions": [4],
        "arrival_rate": [2.0],
        "lps": [10, 30],
    },
    mc_trials=8,
    seed=21,
)
SHARD_SIZE = 3  # 6 points -> 2 shards, splitting the queue_policy blocks


@pytest.fixture(scope="module")
def reference(request) -> StudyResults:
    return run_study(SPEC, workers=1, shard_size=SHARD_SIZE)


@pytest.fixture(scope="module")
def reference_bytes(reference) -> bytes:
    return reference.artifact_bytes()


class TestSpecAxes:
    def test_axis_order_and_points(self):
        assert SPEC.num_points == 6
        point = SPEC.point(0)
        assert point["queue_policy"] == "fifo"
        assert point["sessions"] == 4
        assert point["arrival_rate"] == 2.0

    def test_unknown_queue_policy_rejected(self):
        with pytest.raises(ValidationError, match="queue_policy"):
            ScenarioSpec(axes={"backend": ["des"], "queue_policy": ["lifo"]})

    def test_bad_sessions_rejected(self):
        with pytest.raises(ValidationError, match="sessions"):
            ScenarioSpec(axes={"backend": ["des"], "sessions": [-1]})
        with pytest.raises(ValidationError, match="sessions"):
            ScenarioSpec(axes={"backend": ["des"], "sessions": [2.5]})

    def test_bad_arrival_rate_rejected(self):
        with pytest.raises(ValidationError, match="arrival_rate"):
            ScenarioSpec(axes={"backend": ["des"], "arrival_rate": [-1.0]})

    def test_empty_workload_grid_point_rejected(self):
        with pytest.raises(ValidationError, match="empty workload"):
            ScenarioSpec(
                axes={
                    "backend": ["des"],
                    "sessions": [0, 4],
                    "arrival_rate": [0.0, 2.0],
                }
            )

    @pytest.mark.parametrize("backend", ["closed_form", "aspen"])
    @pytest.mark.parametrize(
        "axis, values",
        [("queue_policy", ["priority"]), ("sessions", [2]), ("arrival_rate", [1.0])],
    )
    def test_contention_axes_gated_to_des(self, backend, axis, values):
        with pytest.raises(ValidationError, match=f"does not support axis '{axis}'"):
            ScenarioSpec(axes={"backend": [backend], axis: values})

    def test_explicit_defaults_accepted_everywhere(self):
        # Spelling out the operating-point defaults is not a scan, so the
        # capability gate lets any backend through.
        spec = ScenarioSpec(
            axes={
                "backend": ["closed_form", "aspen", "des"],
                "queue_policy": ["fifo"],
                "sessions": [1],
                "arrival_rate": [0.0],
                "lps": [5],
            }
        )
        assert spec.num_points == 3


class TestArtifactSchema:
    def test_schema_v4_carries_contention_columns(self, reference):
        payload = json.loads(reference.to_json())
        assert payload["schema_version"] == ARTIFACT_SCHEMA_VERSION == 4
        for column in ("queue_policy", "sessions", "arrival_rate", *CONTENTION_COLUMNS):
            assert column in payload["columns"], column

    def test_roundtrip_preserves_bytes(self, reference, reference_bytes):
        restored = StudyResults.from_dict(json.loads(reference.to_json()))
        assert restored.artifact_bytes() == reference_bytes

    def test_des_rows_carry_finite_metrics(self, reference):
        assert bool(np.all(reference.contention_rows()))
        for column in CONTENTION_COLUMNS:
            values = reference.column(column)
            assert np.all(np.isfinite(values)), column
        assert np.all(reference.column("utilization") <= 1.0)
        assert np.all(reference.column("queue_wait_s") >= 0.0)

    def test_mixed_backend_rows_are_nan_off_des(self):
        spec = ScenarioSpec(
            axes={"backend": ["closed_form", "des"], "lps": [5, 15]},
            name="mixed",
        )
        results = run_study(spec)
        mask = results.contention_rows()
        assert not mask.any()  # uncontended defaults: no simulated traffic
        for column in CONTENTION_COLUMNS:
            assert np.all(np.isnan(results.column(column))), column

    def test_latency_percentiles_are_ordered(self, reference):
        p50 = reference.column("latency_p50_s")
        p95 = reference.column("latency_p95_s")
        p99 = reference.column("latency_p99_s")
        assert np.all(p50 <= p95) and np.all(p95 <= p99)


class TestByteIdentity:
    """The determinism audit, extended to contended studies."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_counts(self, reference_bytes, workers):
        run = run_study(SPEC, workers=workers, shard_size=SHARD_SIZE)
        assert run.artifact_bytes() == reference_bytes

    def test_scalar_vs_vectorized(self, reference_bytes):
        run = run_study(SPEC, workers=1, shard_size=SHARD_SIZE, vectorize=False)
        assert run.artifact_bytes() == reference_bytes

    def test_shard_order_permutation(self, reference_bytes):
        num_shards = len(shard_ranges(SPEC.num_points, SHARD_SIZE))
        order = list(reversed(range(num_shards)))
        run = run_study(SPEC, workers=1, shard_size=SHARD_SIZE, shard_order=order)
        assert run.artifact_bytes() == reference_bytes

    def test_shard_size_leaves_contention_columns_alone(self, reference):
        """Contention streams key on the *global* row index, not the shard
        grid, so any slice matches the full run."""
        resharded = run_study(SPEC, workers=1, shard_size=2)
        for column in CONTENTION_COLUMNS:
            assert np.array_equal(
                reference.column(column), resharded.column(column)
            ), column

    def test_cache_cold_vs_warm(self, reference_bytes, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        cold = run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)
        assert cold.artifact_bytes() == reference_bytes
        warm = run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)
        assert warm.artifact_bytes() == reference_bytes
        assert cache.hits == 2

    @pytest.mark.distributed
    @pytest.mark.parametrize("num_workers", [0, 2])
    def test_distributed_topology(self, reference_bytes, num_workers):
        from repro.distributed import ShardCoordinator, ShardWorker
        from repro.studies.executor import RetryPolicy

        coord = ShardCoordinator(lease_ttl_s=5.0)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        if num_workers == 0:
            coord.drain_inline(sid)
            assert coord.results(sid).artifact_bytes() == reference_bytes
            return
        stop = threading.Event()
        workers = [
            ShardWorker(
                coord,
                worker_id=f"w{i}",
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.0),
                poll_s=0.005,
            )
            for i in range(num_workers)
        ]
        threads = [
            threading.Thread(target=w.run, kwargs={"stop": stop}) for w in workers
        ]
        for t in threads:
            t.start()
        try:
            results = coord.wait(sid, timeout=60.0)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert results.artifact_bytes() == reference_bytes


class TestShardOrderProperty:
    """Arrival-process streams are a function of the global row index only."""

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_any_shard_order_reproduces_the_reference(self, data):
        spec = ScenarioSpec(
            name="order-prop",
            axes={
                "backend": ["des"],
                "queue_policy": ["fifo", "priority"],
                "sessions": [2],
                "arrival_rate": [3.0],
                "lps": [8, 16],
            },
            seed=3,
        )
        shard_size = data.draw(st.sampled_from([1, 2, 3, 5]), label="shard_size")
        num_shards = len(shard_ranges(spec.num_points, shard_size))
        order = data.draw(st.permutations(range(num_shards)), label="order")
        reference = run_study(spec, workers=1, shard_size=shard_size)
        shuffled = run_study(
            spec, workers=1, shard_size=shard_size, shard_order=list(order)
        )
        assert shuffled.artifact_bytes() == reference.artifact_bytes()


class TestContentionReport:
    def test_summary_lists_every_policy(self, reference):
        summary = reference.contention_summary()
        assert list(summary) == ["fifo", "priority", "round-robin"]
        for stats in summary.values():
            assert stats["rows"] == 2.0
            assert stats["utilization"] > 0.0

    def test_report_table_renders(self, reference):
        table = contention_summary(reference)
        assert "contended workload by queue policy" in table
        for policy in ("fifo", "priority", "round-robin"):
            assert policy in table

    def test_uncontended_results_raise(self):
        results = run_study(ScenarioSpec(axes={"lps": [1, 2]}))
        assert results.contention_summary() == {}
        with pytest.raises(ValidationError, match="contention summary"):
            contention_summary(results)

    def test_study_summary_appends_contention_table(self, reference):
        from repro.studies.reportgen import study_summary

        text = study_summary(reference)
        assert "contended workload by queue policy" in text
        plain = run_study(ScenarioSpec(axes={"lps": [1, 2]}))
        assert "contended workload" not in study_summary(plain)


class TestCliFlags:
    def test_contended_study_flags(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "contended.json"
        code = main(
            [
                "study",
                "--backend", "des",
                "--queue-policy", "fifo,priority",
                "--sessions", "2",
                "--arrival-rate", "2.0",
                "--lps", "5,15",
                "--out", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "contended workload by queue policy" in stdout
        payload = json.loads(out.read_text())
        assert payload["schema_version"] == 4
        assert set(payload["columns"]["queue_policy"]) == {"fifo", "priority"}

    def test_bad_flag_values_exit_2(self, capsys):
        from repro.cli import main

        assert main(["study", "--queue-policy", "lifo", "--backend", "des"]) == 2
        assert "queue_policy" in capsys.readouterr().err
        assert main(["study", "--sessions", "two", "--backend", "des"]) == 2
        assert "--sessions" in capsys.readouterr().err
        assert main(["study", "--arrival-rate", "fast", "--backend", "des"]) == 2
        assert "--arrival-rate" in capsys.readouterr().err
