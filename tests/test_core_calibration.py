"""Tests for calibration of the Stage-1 model against measured CMR timings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Stage1Model,
    calibrate_embed_rate,
    measure_cmr_timings,
    model_measured_ratios,
)
from repro.embedding.cmr import CmrParams
from repro.exceptions import ValidationError
from repro.hardware import ChimeraTopology


class TestMeasure:
    def test_measures_small_sizes(self):
        timings = measure_cmr_timings(
            [2, 4, 6],
            topology=ChimeraTopology(4, 4, 4),
            params=CmrParams(max_tries=4),
            rng=0,
        )
        assert sorted(timings) == [2, 4, 6]
        assert all(t > 0 for t in timings.values())

    def test_repeats_guard(self):
        with pytest.raises(ValidationError):
            measure_cmr_timings([2], repeats=0)


class TestCalibrate:
    def test_fit_recovers_synthetic_rate(self):
        """If measurements exactly follow the model at rate R, the fit finds R."""
        base = Stage1Model()
        true_rate = 5e9
        measured = {n: base.embedding_ops(n) / true_rate for n in (10, 15, 20, 25, 30)}
        fitted = calibrate_embed_rate(measured, base)
        assert fitted.embed_rate_scale * base.host.flops_sp_simd == pytest.approx(
            true_rate, rel=1e-9
        )

    def test_fit_is_exact_in_log_space(self):
        base = Stage1Model()
        measured = {
            10: base.embedding_ops(10) / 1e9,
            20: base.embedding_ops(20) / 4e9,  # geometric mean = 2e9
        }
        fitted = calibrate_embed_rate(measured, base)
        assert fitted.embed_rate_scale * base.host.flops_sp_simd == pytest.approx(
            2e9, rel=1e-9
        )

    def test_min_size_excludes_small_n(self):
        base = Stage1Model()
        measured = {5: 1e9, 20: base.embedding_ops(20) / 3e9}  # junk small-n point
        fitted = calibrate_embed_rate(measured, base, min_size=10)
        assert fitted.embed_rate_scale * base.host.flops_sp_simd == pytest.approx(
            3e9, rel=1e-9
        )

    def test_no_usable_sizes(self):
        with pytest.raises(ValidationError):
            calibrate_embed_rate({5: 1.0}, min_size=10)

    def test_zero_op_count_sizes_raise(self):
        """Regression: sizes whose model op count is zero (n <= 1) used to
        leave the fit empty, and `np.mean([])` poisoned the model with a
        NaN embed_rate_scale instead of raising."""
        with pytest.raises(ValidationError, match="degenerate"):
            calibrate_embed_rate({0: 0.5, 1: 0.5}, min_size=0)

    def test_nan_measured_timings_excluded(self):
        """NaN timings are dropped like non-positive ones; all-NaN raises."""
        with pytest.raises(ValidationError, match="positive finite"):
            calibrate_embed_rate({12: float("nan"), 16: float("nan")})
        # A NaN row alongside good rows must not poison the fit.
        base = Stage1Model()
        rate = base.host.flops_sp_simd
        good = {n: base.embedding_ops(n) / rate for n in (12, 16)}
        fitted = calibrate_embed_rate({**good, 20: float("nan")})
        assert np.isfinite(fitted.embed_rate_scale)
        assert fitted.embed_rate_scale == pytest.approx(1.0, rel=1e-9)

    def test_inf_measured_timings_excluded(self):
        with pytest.raises(ValidationError, match="positive finite"):
            calibrate_embed_rate({12: float("inf")})


class TestRatios:
    def test_perfect_model_gives_unit_ratios(self):
        base = Stage1Model()
        rate = base.host.flops_sp_simd
        measured = {n: base.embedding_ops(n) / rate for n in (10, 20, 30)}
        ratios = model_measured_ratios(measured, base)
        for r in ratios.values():
            assert r == pytest.approx(1.0, rel=1e-9)

    def test_overestimation_shows_up(self):
        base = Stage1Model()
        rate = base.host.flops_sp_simd
        measured = {10: base.embedding_ops(10) / rate / 4.0}  # 4x faster than model
        ratios = model_measured_ratios(measured, base)
        assert ratios[10] == pytest.approx(4.0, rel=1e-9)

    def test_full_stage_option(self):
        base = Stage1Model()
        measured = {20: 1.0}
        emb_only = model_measured_ratios(measured, base, embedding_only=True)
        full = model_measured_ratios(measured, base, embedding_only=False)
        assert full[20] > emb_only[20]  # total includes the 0.32 s constant


class TestEndToEnd:
    def test_calibrated_model_within_factor_of_measurement(self):
        """The Fig.-9(a) style comparison on a small, fast configuration."""
        topo = ChimeraTopology(5, 5, 4)
        sizes = [4, 6, 8]
        measured = measure_cmr_timings(
            sizes, topology=topo, params=CmrParams(max_tries=12), rng=1
        )
        model = Stage1Model(m=5, n=5, l=4)
        fitted = calibrate_embed_rate(measured, model, min_size=4)
        ratios = model_measured_ratios(measured, fitted)
        for n, r in ratios.items():
            assert 1 / 25 < r < 25, f"n={n}: ratio {r} outside sanity band"
