"""Executor tests: the sharded-determinism contract and the fast path.

The determinism audit required by the study subsystem: one spec, executed
with 1, 2, and 4 workers, with re-ordered shards, and with the vectorized
fast path or the scalar reference loop, must produce *byte-identical*
results artifacts.  See ``repro/_rng.py`` (spawn-stream seeding rule) and
the ``repro.studies.executor`` module docstring for the contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SplitExecutionModel
from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec, run_study, shard_ranges
from repro.studies.executor import _run_shard


@pytest.fixture(scope="module")
def audit_spec() -> ScenarioSpec:
    """Small but multi-block grid: 2 modes x 2 accuracies x 30 sizes = 120 points."""
    return ScenarioSpec(
        axes={
            "lps": list(range(1, 31)),
            "accuracy": [0.9, 0.99],
            "embedding_mode": ["online", "offline"],
        },
        name="audit",
        mc_trials=32,
        seed=11,
    )


@pytest.fixture(scope="module")
def reference_bytes(audit_spec) -> str:
    return run_study(audit_spec, workers=1, shard_size=16).to_json()


class TestShardGrid:
    def test_ranges_cover_points_exactly_once(self):
        ranges = shard_ranges(100, 32)
        assert ranges == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_bad_shard_size_rejected(self):
        with pytest.raises(ValidationError, match="shard_size"):
            shard_ranges(10, 0)

    def test_bad_worker_count_rejected(self, audit_spec):
        with pytest.raises(ValidationError, match="workers"):
            run_study(audit_spec, workers=0)

    def test_bad_shard_order_rejected(self, audit_spec):
        with pytest.raises(ValidationError, match="permutation"):
            run_study(audit_spec, shard_size=16, shard_order=[0, 0, 1])


class TestDeterminismAudit:
    """Same spec, any execution strategy -> byte-identical artifacts."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_counts_bit_identical(self, audit_spec, reference_bytes, workers):
        assert run_study(audit_spec, workers=workers, shard_size=16).to_json() == reference_bytes

    def test_reordered_shards_bit_identical(self, audit_spec, reference_bytes):
        num_shards = len(shard_ranges(audit_spec.num_points, 16))
        order = list(reversed(range(num_shards)))
        assert (
            run_study(audit_spec, workers=1, shard_size=16, shard_order=order).to_json()
            == reference_bytes
        )
        rng = np.random.default_rng(3)
        order = list(rng.permutation(num_shards))
        assert (
            run_study(audit_spec, workers=2, shard_size=16, shard_order=order).to_json()
            == reference_bytes
        )

    def test_scalar_loop_bit_identical(self, audit_spec, reference_bytes):
        assert (
            run_study(audit_spec, workers=1, shard_size=16, vectorize=False).to_json()
            == reference_bytes
        )

    def test_shard_size_changes_only_mc_columns(self, audit_spec, reference_bytes):
        """The shard grid partitions the MC streams; model columns never move.

        The ``sched_*`` columns are, like ``mc_accuracy``, functions of the
        shard grid by definition (they simulate dispatch *over* it), so they
        are the only other columns allowed to move with shard_size.
        """
        r16 = run_study(audit_spec, workers=1, shard_size=16)
        r7 = run_study(audit_spec, workers=1, shard_size=7)
        for name in r16.table.dtype.names:
            if name in ("mc_accuracy", "sched_latency_s", "sched_steals"):
                continue
            a, b = r16.column(name), r7.column(name)
            equal = (
                np.array_equal(a, b, equal_nan=True)
                if a.dtype.kind == "f"
                else np.array_equal(a, b)
            )
            assert equal, name

    def test_seed_changes_only_mc_columns(self, audit_spec):
        respun = ScenarioSpec(
            axes=dict(audit_spec.axes), name=audit_spec.name,
            mc_trials=audit_spec.mc_trials, seed=audit_spec.seed + 1,
        )
        r1 = run_study(audit_spec, shard_size=16)
        r2 = run_study(respun, shard_size=16)
        assert not np.array_equal(r1.column("mc_accuracy"), r2.column("mc_accuracy"))
        assert np.array_equal(r1.column("total_s"), r2.column("total_s"))


class TestAgainstScalarModel:
    """Every table row equals a direct SplitExecutionModel evaluation."""

    def test_rows_match_time_to_solution(self, audit_spec):
        results = run_study(audit_spec, shard_size=16)
        for index in [0, 7, 29, 30, 60, 119]:
            point = audit_spec.point(index)
            model = SplitExecutionModel(embedding_mode=point["embedding_mode"])
            t = model.time_to_solution(point["lps"], point["accuracy"], point["success"])
            row = results.table[index]
            assert row["lps"] == point["lps"]
            assert row["stage1_s"] == t.stage1_seconds
            assert row["stage2_s"] == t.stage2_seconds
            assert row["stage3_s"] == t.stage3_seconds
            assert row["total_s"] == t.total_seconds
            assert row["quantum_fraction"] == t.quantum_fraction
            assert row["dominant_stage"] == t.dominant_stage
            assert row["repetitions"] == t.stage2.repetitions

    def test_machine_override_axes_reach_the_model(self):
        spec = ScenarioSpec(axes={"lps": [40], "clock_hz": [2.7e9, 5.4e9]})
        results = run_study(spec)
        base = SplitExecutionModel()
        fast = base.with_overrides(clock_hz=5.4e9)
        assert results.table[0]["total_s"] == base.time_to_solution(40, 0.99, 0.7).total_seconds
        assert results.table[1]["total_s"] == fast.time_to_solution(40, 0.99, 0.7).total_seconds
        assert results.table[1]["total_s"] < results.table[0]["total_s"]

    def test_anneal_axis_reaches_stage2(self):
        spec = ScenarioSpec(axes={"lps": [10], "anneal_us": [20.0, 200.0]})
        results = run_study(spec)
        assert results.table[1]["stage2_s"] > results.table[0]["stage2_s"]
        assert results.table[1]["stage1_s"] == results.table[0]["stage1_s"]


class TestMonteCarloColumn:
    def test_disabled_by_default(self):
        results = run_study(ScenarioSpec(axes={"lps": [1, 2]}))
        assert np.all(np.isnan(results.column("mc_accuracy")))

    def test_estimates_track_the_analytic_accuracy(self):
        spec = ScenarioSpec(
            axes={"lps": [10], "accuracy": [0.5, 0.99]}, mc_trials=4000, seed=0
        )
        from repro.core import achieved_accuracy, required_repetitions

        results = run_study(spec)
        mc = results.column("mc_accuracy")
        # Eq.-6 rounds repetitions up, so the estimate tracks the *achieved*
        # accuracy (>= the target); 4000 trials puts it within a few percent.
        for row, target in zip(mc, (0.5, 0.99)):
            analytic = achieved_accuracy(required_repetitions(target, 0.7), 0.7)
            assert analytic >= target
            assert row == pytest.approx(analytic, abs=0.03)

    def test_shard_stream_rule_is_spawn_stream(self, audit_spec):
        """Shard k's draws come from spawn_stream(seed, k) — re-derivable."""
        from repro._rng import spawn_stream
        from repro.core import achieved_accuracy

        results = run_study(audit_spec, shard_size=16)
        # Shard 1 covers points [16, 32): tail of the first config block
        # (accuracy=0.9, 14 points) then the head of the second (2 points).
        rng = spawn_stream(audit_spec.seed, 1)
        reps_a = int(results.table[16]["repetitions"])
        expected_a = rng.binomial(32, achieved_accuracy(reps_a, 0.7), size=14) / 32.0
        reps_b = int(results.table[30]["repetitions"])
        expected_b = rng.binomial(32, achieved_accuracy(reps_b, 0.7), size=2) / 32.0
        assert np.array_equal(results.column("mc_accuracy")[16:30], expected_a)
        assert np.array_equal(results.column("mc_accuracy")[30:32], expected_b)


class TestShardFunction:
    def test_run_shard_slice_matches_full_run(self, audit_spec):
        full = run_study(audit_spec, shard_size=audit_spec.num_points)
        spec_sans_mc = ScenarioSpec(axes=dict(audit_spec.axes), name="plain")
        full_plain = run_study(spec_sans_mc, shard_size=16)
        part = _run_shard(spec_sans_mc.to_dict(), 2, 40, 55, 16, True)
        # Byte comparison: mc_accuracy is NaN on both sides, and np.nan has
        # one bit pattern, so tobytes() is an exact structured-row equality.
        assert part.tobytes() == full_plain.table[40:55].tobytes()
        assert full.num_points == audit_spec.num_points
