"""Tests for the exact enumeration sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer import ExactSolver
from repro.exceptions import SamplerError
from repro.qubo import IsingModel, brute_force_ising, random_ising


class TestExactSolver:
    def test_returns_true_minimum(self):
        m = random_ising(8, rng=0)
        ss = ExactSolver().sample(m)
        assert ss.lowest_energy == pytest.approx(brute_force_ising(m)[1][0])

    def test_num_reads_returns_k_best(self):
        m = random_ising(6, rng=1)
        ss = ExactSolver().sample(m, num_reads=5)
        _, expected = brute_force_ising(m, num_best=5)
        assert np.allclose(ss.energies, expected)

    def test_more_reads_than_states_pads(self):
        m = IsingModel([1.0], {})
        ss = ExactSolver().sample(m, num_reads=5)
        assert ss.num_rows == 5
        assert ss.energies[-1] == ss.energies[1]  # padded with the worst state

    def test_spin_limit_enforced(self):
        m = random_ising(30, density=0.1, rng=2)
        with pytest.raises(SamplerError, match="exceeds"):
            ExactSolver().sample(m)
        with pytest.raises(SamplerError, match="exceeds"):
            ExactSolver().ground_energy(m)

    def test_custom_limit(self):
        solver = ExactSolver(max_spins=4)
        with pytest.raises(SamplerError):
            solver.sample(random_ising(5, rng=0))

    def test_bad_limit(self):
        with pytest.raises(SamplerError):
            ExactSolver(max_spins=0)

    def test_unexpected_kwargs_rejected(self):
        with pytest.raises(SamplerError, match="unexpected"):
            ExactSolver().sample(random_ising(3, rng=0), schedule=None)

    def test_deterministic_perfect_annealer(self):
        """ExactSolver always includes the ground state in the ensemble."""
        m = random_ising(7, rng=3)
        ss = ExactSolver().sample(m, num_reads=3)
        ground = ss.lowest_energy
        assert ss.ground_state_probability(ground) > 0.0
        assert ss.energies[0] == pytest.approx(ground)

    def test_ground_state_probability_is_one_over_num_reads(self):
        """Interplay pin: the reads are *distinct* states with multiplicity
        1, so a unique ground state yields p_s = 1/num_reads — NOT 1, which
        the docstring used to (wrongly) claim."""
        m = IsingModel([1.0, 2.0], {})  # unique ground (-1, -1), distinct energies
        ground = ExactSolver().ground_energy(m)
        for num_reads in (1, 2, 4):
            ss = ExactSolver().sample(m, num_reads=num_reads)
            assert ss.ground_state_probability(ground) == pytest.approx(1 / num_reads)
        # Degenerate ground states count once each: g / num_reads.
        ferro = IsingModel([0.0, 0.0], {(0, 1): -1.0})  # two ground states
        ground = ExactSolver().ground_energy(ferro)
        ss = ExactSolver().sample(ferro, num_reads=4)
        assert ss.ground_state_probability(ground) == pytest.approx(2 / 4)
