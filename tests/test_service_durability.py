"""Service durability and resilience: journal recovery, backpressure, chaos.

The acceptance story: a study server killed mid-queue and restarted over
the same journal + cache re-serves every finished grid **byte-identically
without re-executing a shard** and completes the interrupted ones.  The
real ``kill -9`` version lives in ``scripts/ci_check.sh``; here the same
machinery is pinned in-process (a second manager/server over the first
one's journal is exactly what a restarted process sees), plus the HTTP
fault sites, the 429 ``Retry-After`` contract, the client's bounded
retry, and the backing-off ``wait()`` poll.
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro import backends
from repro.exceptions import ValidationError
from repro.faults import (
    FaultPlan,
    FaultRule,
    SITE_HTTP_CONNECTION,
    SITE_HTTP_SLOW,
)
from repro.service import (
    JobJournal,
    JobManager,
    ServiceError,
    StudyServer,
    StudyServiceClient,
)
from repro.service.protocol import ERR_CONNECTION, ERR_QUEUE_FULL, ERR_TIMEOUT
from repro.studies import ScenarioSpec, StudyCache, run_study

pytestmark = pytest.mark.faults

SPEC = ScenarioSpec(
    axes={"lps": [1, 2, 3, 4, 5], "accuracy": [0.9, 0.99]}, name="durability"
)
OTHER_SPEC = ScenarioSpec(axes={"lps": [7, 8, 9]}, name="durability-other")


def wait_state(manager: JobManager, job_id: str, state: str, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    while True:
        snapshot = manager.status(job_id)
        assert snapshot is not None
        if snapshot["state"] == state:
            return snapshot
        assert time.monotonic() < deadline, f"job never reached {state}: {snapshot}"
        time.sleep(0.02)


# --------------------------------------------------------------------- #
# Journal unit behavior
# --------------------------------------------------------------------- #
class TestJobJournal:
    def test_append_load_roundtrip_in_order(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        events = [
            {"event": "submitted", "job_id": "a" * 64, "spec": {"axes": {}}, "unix": 1.0},
            {"event": "running", "job_id": "a" * 64},
            {"event": "done", "job_id": "a" * 64, "unix": 2.0},
        ]
        for event in events:
            journal.append(event)
        journal.close()
        assert JobJournal(journal.path).load() == events

    def test_missing_file_loads_empty(self, tmp_path):
        assert JobJournal(tmp_path / "never-written.jsonl").load() == []

    def test_corrupt_tail_is_dropped_and_prefix_trusted(self, tmp_path):
        journal = JobJournal(tmp_path / "jobs.jsonl")
        journal.append({"event": "submitted", "job_id": "a" * 64, "spec": {}})
        journal.append({"event": "running", "job_id": "a" * 64})
        journal.close()
        with open(journal.path, "ab") as f:
            f.write(b'{"event": "done", "job_id": "aaa')  # torn by kill -9
        records = JobJournal(journal.path).load()
        assert [r["event"] for r in records] == ["submitted", "running"]

    def test_non_event_line_stops_the_read(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_bytes(
            b'{"event": "submitted", "job_id": "x", "spec": {}}\n'
            b'[1, 2, 3]\n'
            b'{"event": "running", "job_id": "x"}\n'
        )
        records = JobJournal(path).load()
        assert [r["event"] for r in records] == ["submitted"]

    def test_replay_folds_lifecycle_and_ignores_orphans(self):
        spec = {"axes": {"lps": [1]}}
        records = [
            {"event": "submitted", "job_id": "j1", "spec": spec, "shard_size": 8, "unix": 1.0},
            {"event": "submitted", "job_id": "j2", "spec": spec, "shard_size": 8, "unix": 2.0},
            {"event": "running", "job_id": "j1"},
            {"event": "done", "job_id": "j1", "unix": 3.0},
            {"event": "running", "job_id": "j2"},
            {"event": "failed", "job_id": "j2", "error": {"code": "x"}, "unix": 4.0},
            {"event": "done", "job_id": "never-submitted", "unix": 5.0},
            {"event": "submitted", "job_id": "j3", "spec": "not-a-dict"},
        ]
        jobs = JobJournal.replay(records)
        assert list(jobs) == ["j1", "j2"]  # orphan and junk-spec entries dropped
        assert jobs["j1"]["state"] == "done" and jobs["j1"]["finished_unix"] == 3.0
        assert jobs["j2"]["state"] == "failed" and jobs["j2"]["error"] == {"code": "x"}
        assert jobs["j1"]["submitted_unix"] == 1.0

    def test_replay_handles_recovery_cycles(self):
        # A recovered job legitimately appends running/done again.
        spec = {"axes": {"lps": [1]}}
        records = [
            {"event": "submitted", "job_id": "j", "spec": spec, "shard_size": 8, "unix": 1.0},
            {"event": "running", "job_id": "j"},
            {"event": "done", "job_id": "j", "unix": 2.0},
            {"event": "running", "job_id": "j"},
            {"event": "done", "job_id": "j", "unix": 9.0},
        ]
        jobs = JobJournal.replay(records)
        assert jobs["j"]["state"] == "done" and jobs["j"]["finished_unix"] == 9.0


# --------------------------------------------------------------------- #
# Manager recovery
# --------------------------------------------------------------------- #
class TestManagerRecovery:
    def test_finished_job_reserves_byte_identically_without_execution(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        cache = tmp_path / "cache"
        first = JobManager(cache=StudyCache(cache), journal=journal_path, job_workers=2)
        first.start()
        snapshot, _ = first.submit(SPEC)
        job_id = snapshot["job_id"]
        wait_state(first, job_id, "done")
        original, _ = first.artifact(job_id)
        first.stop()
        first.journal.close()

        second = JobManager(cache=StudyCache(cache), journal=journal_path, job_workers=2)
        assert second.recovered_jobs == 1
        assert second.status(job_id)["state"] == "queued"  # re-queued for re-serve
        second.start()
        wait_state(second, job_id, "done")
        recovered, recovered_snapshot = second.artifact(job_id)
        assert recovered == original == run_study(SPEC).artifact_bytes()
        assert second.executed_shards == 0  # pure cache re-serve
        assert recovered_snapshot["served_from_cache"] is True
        second.stop()

    def test_interrupted_queued_job_completes_after_restart(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        stalled = JobManager(journal=journal_path, job_workers=0)
        snapshot, _ = stalled.submit(SPEC)
        job_id = snapshot["job_id"]
        assert stalled.status(job_id)["state"] == "queued"
        stalled.journal.close()  # never ran: the journal holds only "submitted"

        revived = JobManager(journal=journal_path, job_workers=2)
        assert revived.recovered_jobs == 1
        revived.start()
        assert wait_state(revived, job_id, "done")["error"] is None
        artifact, _ = revived.artifact(job_id)
        assert artifact == run_study(SPEC).artifact_bytes()
        revived.stop()

    def test_recovery_preserves_submission_metadata(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        first = JobManager(journal=journal_path, job_workers=0)
        submitted_unix = first.submit(SPEC)[0]["submitted_unix"]
        first.journal.close()
        second = JobManager(journal=journal_path, job_workers=0)
        recovered = second.list_jobs()[0]
        assert recovered["submitted_unix"] == submitted_unix

    def test_failed_job_is_restored_as_failed(self, tmp_path):
        class _Exploding(backends.PerformanceBackend):
            name = "durability_boom"
            capabilities = backends.BackendCapabilities(
                supported_axes=frozenset(backends.DEFAULT_OPERATING_POINT),
                rtol=0.0,
                atol=0.0,
                description="always raises (recovery test double)",
            )

            def evaluate(self, point):
                raise RuntimeError("boom")

        backends.register(_Exploding)
        try:
            journal_path = tmp_path / "journal.jsonl"
            doomed = ScenarioSpec(
                axes={"lps": [1], "backend": ["durability_boom"]}, name="doomed"
            )
            first = JobManager(journal=journal_path, job_workers=2)
            first.start()
            job_id = first.submit(doomed)[0]["job_id"]
            failed = wait_state(first, job_id, "failed")
            first.stop()
            first.journal.close()

            second = JobManager(journal=journal_path, job_workers=2)
            assert second.recovered_jobs == 1
            restored = second.status(job_id)
            assert restored["state"] == "failed"
            assert restored["error"] == failed["error"]
            assert restored["finished_unix"] == failed["finished_unix"]

            # With the backend gone, the same journal recovers nothing: the
            # spec no longer validates, so the entry is distrusted and skipped.
            backends.unregister("durability_boom")
            third = JobManager(journal=journal_path, job_workers=0)
            assert third.recovered_jobs == 0
        finally:
            if "durability_boom" in backends.available_backends():
                backends.unregister("durability_boom")

    def test_tampered_job_id_is_distrusted(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        journal = JobJournal(journal_path)
        journal.append(
            {
                "event": "submitted",
                "job_id": "f" * 64,  # not the content hash of this spec
                "spec": SPEC.to_dict(),
                "shard_size": 4096,
                "unix": 1.0,
            }
        )
        journal.close()
        manager = JobManager(journal=journal_path, job_workers=0)
        assert manager.recovered_jobs == 0
        assert manager.status("f" * 64) is None

    def test_recovery_beyond_queue_capacity_skips_the_overflow(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        first = JobManager(journal=journal_path, job_workers=0, queue_size=4)
        first.submit(SPEC)
        first.submit(OTHER_SPEC)
        first.journal.close()
        cramped = JobManager(journal=journal_path, job_workers=0, queue_size=1)
        assert cramped.recovered_jobs == 1  # the second stays in the journal
        roomy = JobManager(journal=journal_path, job_workers=0, queue_size=4)
        assert roomy.recovered_jobs == 2


# --------------------------------------------------------------------- #
# Restart over HTTP (the full server)
# --------------------------------------------------------------------- #
def test_restarted_server_reserves_and_lists_recovered_jobs(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    cache = tmp_path / "cache"
    with StudyServer(cache=cache, journal=journal_path) as first:
        client = StudyServiceClient(first.url)
        original = client.run(SPEC)
        assert client.healthz()["recovered_jobs"] == 0
    first.manager.journal.close()

    with StudyServer(cache=cache, journal=journal_path) as second:
        client = StudyServiceClient(second.url)
        assert client.healthz()["recovered_jobs"] == 1
        listing = client.list_studies()
        assert listing["count"] == 1
        assert listing["jobs"][0]["job_id"] == original.job_id
        client.wait(original.job_id, timeout=30.0)
        recovered = client.artifact(original.job_id)
        assert recovered.body == original.body
        assert recovered.served_from_cache is True
        assert second.manager.executed_shards == 0


def test_list_studies_orders_by_submission(tmp_path):
    with StudyServer(cache=tmp_path / "cache") as server:
        client = StudyServiceClient(server.url)
        first = client.submit(SPEC)["job_id"]
        second = client.submit(OTHER_SPEC)["job_id"]
        listing = client.list_studies()
        assert [j["job_id"] for j in listing["jobs"]] == [first, second]
        assert listing["count"] == 2
        for job in listing["jobs"]:
            assert {"state", "submitted_unix", "finished_unix", "progress"} <= set(job)


# --------------------------------------------------------------------- #
# Backpressure: Retry-After on 429
# --------------------------------------------------------------------- #
def test_queue_full_carries_retry_after_hint():
    with StudyServer(job_workers=0, queue_size=1) as server:
        client = StudyServiceClient(server.url, retries=0)
        client.submit(SPEC)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(OTHER_SPEC)
        assert excinfo.value.code == ERR_QUEUE_FULL
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 1.0


def test_client_retries_429_until_budget_exhausted():
    with StudyServer(job_workers=0, queue_size=1) as server:
        client = StudyServiceClient(server.url, retries=2, backoff=0.0, backoff_cap=0.0)
        client.submit(SPEC)
        calls = {"n": 0}
        original = client._request_once

        def counting(method, path, payload=None):
            calls["n"] += 1
            return original(method, path, payload)

        client._request_once = counting
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.submit(OTHER_SPEC)
        assert excinfo.value.code == ERR_QUEUE_FULL
        assert calls["n"] == 3  # first attempt + 2 retries
        # Each retry honored the server's 1s Retry-After hint.
        assert time.monotonic() - start >= 2.0


# --------------------------------------------------------------------- #
# HTTP fault sites + client retry
# --------------------------------------------------------------------- #
def test_connection_reset_fault_is_absorbed_by_client_retry():
    plan = FaultPlan([FaultRule(site=SITE_HTTP_CONNECTION, times=1)])
    with StudyServer(faults=plan) as server:
        fragile = StudyServiceClient(server.url, retries=0, timeout=5.0)
        with pytest.raises(ServiceError) as excinfo:
            fragile.healthz()  # eats the injected reset head-on
        assert excinfo.value.code == ERR_CONNECTION
        # The plan fired its single reset; a retrying client started *after*
        # a fresh identical plan sails through without the caller noticing.
    plan = FaultPlan([FaultRule(site=SITE_HTTP_CONNECTION, times=1)])
    with StudyServer(faults=plan) as server:
        resilient = StudyServiceClient(server.url, retries=2, backoff=0.01, timeout=5.0)
        assert resilient.healthz()["status"] == "ok"


def test_slow_response_fault_delays_but_serves():
    plan = FaultPlan([FaultRule(site=SITE_HTTP_SLOW, times=1, delay_s=0.3)])
    with StudyServer(faults=plan) as server:
        client = StudyServiceClient(server.url)
        start = time.monotonic()
        assert client.healthz()["status"] == "ok"
        assert time.monotonic() - start >= 0.3
        # Only the first request was slowed.
        start = time.monotonic()
        client.healthz()
        assert time.monotonic() - start < 0.3


def test_server_faults_default_to_env_hook(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULTS", '{"rules": [{"site": "http-connection", "times": 1}]}'
    )
    with StudyServer() as server:
        assert server.faults is not None
        client = StudyServiceClient(server.url, retries=2, backoff=0.01, timeout=5.0)
        assert client.healthz()["status"] == "ok"


# --------------------------------------------------------------------- #
# Request read timeout
# --------------------------------------------------------------------- #
def test_idle_connection_is_reaped_by_request_timeout():
    with StudyServer(request_timeout=0.3) as server:
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.settimeout(10)
            start = time.monotonic()
            # Never send a request: the handler's read must time out and
            # close the connection rather than pin the thread forever.
            assert sock.recv(1) == b""
            assert time.monotonic() - start < 5.0


def test_request_timeout_is_validated():
    with pytest.raises(ValidationError, match="request_timeout"):
        StudyServer(request_timeout=0.0)


# --------------------------------------------------------------------- #
# wait() poll backoff
# --------------------------------------------------------------------- #
def test_wait_poll_interval_backs_off_to_the_cap(monkeypatch):
    with StudyServer(job_workers=0) as server:
        client = StudyServiceClient(server.url)
        job_id = client.submit(SPEC)["job_id"]
        sleeps: list[float] = []
        real_sleep = time.sleep
        monkeypatch.setattr(
            "repro.service.client.time.sleep",
            lambda s: (sleeps.append(s), real_sleep(min(s, 0.01)))[1],
        )
        with pytest.raises(ServiceError) as excinfo:
            client.wait(job_id, timeout=0.5, poll_interval=0.02, max_poll_interval=0.16)
        assert excinfo.value.code == ERR_TIMEOUT
        growing = [s for s in sleeps if s in (0.02, 0.04, 0.08, 0.16)]
        assert growing[:4] == [0.02, 0.04, 0.08, 0.16]  # geometric up to the cap
        assert max(sleeps) <= 0.16


def test_client_constructor_validation():
    with pytest.raises(ValueError, match="retries"):
        StudyServiceClient("http://x", retries=-1)
    with pytest.raises(ValueError, match="backoff"):
        StudyServiceClient("http://x", backoff=-0.1)
