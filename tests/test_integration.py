"""End-to-end integration tests crossing every subsystem boundary."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.annealer import DWaveDevice, ExactSolver, SimulatedAnnealingSampler, geometric_schedule
from repro.core import (
    SplitExecutionModel,
    required_repetitions,
)
from repro.hardware import ChimeraTopology, random_faults
from repro.qubo import brute_force_qubo, max_independent_set_qubo, maxcut_qubo
from repro.runtime import Architecture, run_single_session, simulate_architecture


class TestProblemToSolution:
    """Workload generator -> device -> decoded optimum."""

    @pytest.mark.parametrize(
        "make_problem",
        [
            lambda: maxcut_qubo(nx.petersen_graph()),
            lambda: max_independent_set_qubo(nx.cycle_graph(9)),
        ],
        ids=["maxcut-petersen", "mis-c9"],
    )
    def test_device_matches_brute_force(self, make_problem):
        qubo = make_problem()
        device = DWaveDevice(
            topology=ChimeraTopology(4, 4, 4),
            sampler=SimulatedAnnealingSampler(geometric_schedule(300)),
        )
        result = device.solve_qubo(qubo, num_reads=80, rng=0)
        _, exact = brute_force_qubo(qubo)
        assert result.best_energy == pytest.approx(exact[0], abs=1e-9)

    def test_faulty_device_still_solves(self):
        topo = ChimeraTopology(4, 4, 4)
        device = DWaveDevice(
            topology=topo,
            faults=random_faults(topo, qubit_fault_rate=0.03, rng=5),
            sampler=SimulatedAnnealingSampler(geometric_schedule(300)),
        )
        qubo = maxcut_qubo(nx.cycle_graph(8))
        result = device.solve_qubo(qubo, num_reads=60, rng=1)
        _, exact = brute_force_qubo(qubo)
        assert result.best_energy == pytest.approx(exact[0], abs=1e-9)


class TestModelAgainstSimulation:
    """The performance models against the behavioral simulation they describe."""

    def test_eq6_plans_reads_that_succeed(self):
        from repro.qubo import random_ising

        m = random_ising(8, rng=0)
        ground = ExactSolver().ground_energy(m)
        device = DWaveDevice(
            topology=ChimeraTopology(3, 3, 4),
            sampler=SimulatedAnnealingSampler(geometric_schedule(120)),
        )
        ps = device.estimate_success_probability(m, ground, num_reads=150, rng=2)
        assert ps > 0.05
        s = required_repetitions(0.95, ps)
        # Run 40 planned batches; most should contain the ground state.
        hits = 0
        rng = np.random.default_rng(3)
        for _ in range(40):
            r = device.solve_ising(m, num_reads=max(s, 1), rng=rng)
            hits += r.best_energy <= ground + 1e-9
        assert hits / 40 >= 0.75

    def test_device_timing_matches_stage2_model(self):
        """DeviceTiming and the Stage-2 closed form agree on sampling time."""
        from repro.core import Stage2Model
        from repro.qubo import random_ising

        m = random_ising(4, rng=1)
        device = DWaveDevice(topology=ChimeraTopology(2, 2, 4))
        stage2 = Stage2Model(per_read=True)
        s = stage2.repetitions(0.99, 0.7)
        result = device.solve_ising(m, num_reads=s, rng=0)
        assert result.timing.sampling_us * 1e-6 == pytest.approx(
            stage2.seconds(0.99, 0.7), rel=1e-9
        )


class TestPipelineToRuntime:
    """Performance model -> request profile -> DES -> consistent totals."""

    def test_profile_latency_consistency(self):
        model = SplitExecutionModel()
        for lps in (10, 50):
            profile = model.request_profile(lps)
            latency, _ = run_single_session(profile)
            t = model.time_to_solution(lps)
            # DES latency = model total + transfer overheads.
            assert latency >= t.total_seconds
            assert latency == pytest.approx(profile.total_service_time, rel=1e-9)

    def test_architecture_study_runs_on_model_profiles(self):
        model = SplitExecutionModel()
        profile = model.request_profile(20)
        results = {
            arch: simulate_architecture(arch, profile, num_clients=3,
                                        requests_per_client=2, rng=0)
            for arch in Architecture
        }
        assert results[Architecture.DEDICATED].makespan <= results[
            Architecture.SHARED
        ].makespan + 1e-12

    def test_offline_mode_changes_des_critical_path(self):
        online = SplitExecutionModel(embedding_mode="online").request_profile(50)
        offline = SplitExecutionModel(embedding_mode="offline").request_profile(50)
        lat_on, _ = run_single_session(online)
        lat_off, _ = run_single_session(offline)
        assert lat_off < lat_on / 10
