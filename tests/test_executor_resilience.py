"""Executor fault-tolerance tests: retry, recovery, and unchanged bytes.

The acceptance criterion this suite pins: **injected transient faults
never change the artifact**.  A study run that suffered shard failures,
worker deaths, or cache corruption produces byte-for-byte the artifact a
fault-free run produces — the damage is visible only in the
:class:`~repro.faults.FaultStats` attached *outside* the canonical
payload.  Permanent faults (more failures than the retry budget) surface
as :class:`~repro.exceptions.ShardError` carrying the attempt history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShardError, ValidationError
from repro.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
)
from repro.studies import RetryPolicy, ScenarioSpec, StudyCache, run_study
from repro.studies.executor import _BACKOFF_DOMAIN, _run_shard

pytestmark = pytest.mark.faults

#: 12 points over 3 shards (shard_size=4), with live MC draws so the test
#: also proves retries never advance the Monte-Carlo streams.
SPEC = ScenarioSpec(
    axes={"lps": [1, 2, 3, 4], "accuracy": [0.9, 0.95, 0.99]},
    name="resilience",
    mc_trials=16,
    seed=11,
)
SHARD_SIZE = 4

#: No sleeping in tests: real backoff schedules are pinned separately.
FAST_RETRY = RetryPolicy(base_delay_s=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def reference_bytes() -> bytes:
    return run_study(SPEC, shard_size=SHARD_SIZE).artifact_bytes()


# --------------------------------------------------------------------- #
# Transient shard failures: retried, byte-identical
# --------------------------------------------------------------------- #
def test_transient_shard_failure_is_retried_and_bytes_match(reference_bytes):
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(1,), times=1)])
    results = run_study(SPEC, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY)
    assert results.artifact_bytes() == reference_bytes
    stats = results.fault_stats
    assert stats.shard_failures == 1
    assert stats.shard_retries == 1
    assert stats.recovered_shards == 1
    assert not stats.clean


def test_every_shard_failing_once_still_converges(reference_bytes):
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, times=1)])  # all keys
    results = run_study(SPEC, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY)
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats.recovered_shards == 3


def test_clean_run_reports_clean_stats(reference_bytes):
    results = run_study(SPEC, shard_size=SHARD_SIZE)
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats is not None and results.fault_stats.clean


def test_fault_stats_stay_out_of_the_artifact():
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(0,), times=1)])
    results = run_study(SPEC, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY)
    assert "fault" not in results.to_json()
    roundtripped = type(results).from_dict(results.to_dict())
    assert roundtripped.fault_stats is None  # not serialized, by design


# --------------------------------------------------------------------- #
# Permanent failures: ShardError with history
# --------------------------------------------------------------------- #
def test_exhausted_retry_budget_raises_shard_error_with_history():
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(2,), times=5)])
    with pytest.raises(ShardError) as excinfo:
        run_study(SPEC, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY)
    err = excinfo.value
    assert err.shard_index == 2
    assert len(err.attempts) == FAST_RETRY.max_attempts == 3
    assert [f"attempt {n}" in line for n, line in enumerate(err.attempts)] == [True] * 3
    assert "after 3 attempt(s)" in str(err)


def test_pool_run_also_raises_shard_error_on_permanent_failure():
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(0,), times=5)])
    with pytest.raises(ShardError) as excinfo:
        run_study(SPEC, workers=2, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY)
    assert excinfo.value.shard_index == 0


# --------------------------------------------------------------------- #
# Cache faults: misses and dropped writes, never poisoned artifacts
# --------------------------------------------------------------------- #
def test_cache_read_fault_degrades_to_recompute(tmp_path, reference_bytes):
    cache = StudyCache(tmp_path / "cache")
    run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)  # warm every shard
    plan = FaultPlan([FaultRule(site=SITE_CACHE_READ, keys=(0, 2), times=1)])
    results = run_study(
        SPEC, shard_size=SHARD_SIZE, cache=cache, faults=plan, retry=FAST_RETRY
    )
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats.cache_read_faults == 2


def test_corrupting_cache_read_fault_heals_the_entry(tmp_path, reference_bytes):
    cache = StudyCache(tmp_path / "cache")
    run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)
    plan = FaultPlan(
        [FaultRule(site=SITE_CACHE_READ, keys=(1,), times=1, effect="corrupt")]
    )
    results = run_study(
        SPEC, shard_size=SHARD_SIZE, cache=cache, faults=plan, retry=FAST_RETRY
    )
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats.cache_read_faults == 1
    # The recompute re-stored the shard: a fresh fault-free run is all hits.
    counter = StudyCache(cache.root)
    run_study(SPEC, shard_size=SHARD_SIZE, cache=counter)
    assert counter.stats() == {"hits": 3, "misses": 0, "requests": 3}


def test_cache_write_fault_keeps_results_and_next_run_recomputes(tmp_path, reference_bytes):
    cache = StudyCache(tmp_path / "cache")
    plan = FaultPlan([FaultRule(site=SITE_CACHE_WRITE, keys=(1,), times=1)])
    results = run_study(
        SPEC, shard_size=SHARD_SIZE, cache=cache, faults=plan, retry=FAST_RETRY
    )
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats.cache_write_faults == 1
    # Shard 1 never landed in the store; everything else did.
    counter = StudyCache(cache.root)
    rerun = run_study(SPEC, shard_size=SHARD_SIZE, cache=counter)
    assert counter.stats() == {"hits": 2, "misses": 1, "requests": 3}
    assert rerun.artifact_bytes() == reference_bytes


def test_corrupt_cache_write_is_detected_as_a_miss_later(tmp_path, reference_bytes):
    cache = StudyCache(tmp_path / "cache")
    plan = FaultPlan(
        [FaultRule(site=SITE_CACHE_WRITE, keys=(2,), times=1, effect="corrupt")]
    )
    run_study(SPEC, shard_size=SHARD_SIZE, cache=cache, faults=plan, retry=FAST_RETRY)
    counter = StudyCache(cache.root)
    rerun = run_study(SPEC, shard_size=SHARD_SIZE, cache=counter)
    assert counter.stats() == {"hits": 2, "misses": 1, "requests": 3}
    assert rerun.artifact_bytes() == reference_bytes


# --------------------------------------------------------------------- #
# Worker death: pool recovery and the degraded inline path
# --------------------------------------------------------------------- #
def test_worker_death_is_recovered_by_pool_restart(reference_bytes):
    plan = FaultPlan([FaultRule(site=SITE_WORKER_DEATH, keys=(0,), times=1)])
    results = run_study(
        SPEC, workers=2, shard_size=SHARD_SIZE, faults=plan, retry=FAST_RETRY
    )
    assert results.artifact_bytes() == reference_bytes
    stats = results.fault_stats
    assert stats.worker_deaths == 1
    assert stats.pool_restarts == 1
    assert stats.recovered_shards >= 1  # the dead shard, plus any charged victims
    assert stats.degraded_inline_shards == 0


def test_exhausted_pool_restarts_fall_back_to_inline(reference_bytes):
    plan = FaultPlan([FaultRule(site=SITE_WORKER_DEATH, keys=(0,), times=1)])
    policy = RetryPolicy(base_delay_s=0.0, jitter=0.0, max_pool_restarts=0)
    results = run_study(
        SPEC, workers=2, shard_size=SHARD_SIZE, faults=plan, retry=policy
    )
    assert results.artifact_bytes() == reference_bytes
    stats = results.fault_stats
    assert stats.pool_restarts == 1
    assert stats.degraded_inline_shards >= 1  # the rest of the grid ran in-process


def test_inline_worker_death_raises_instead_of_exiting():
    plan = FaultPlan([FaultRule(site=SITE_WORKER_DEATH, keys=(0,), times=1)])
    with pytest.raises(FaultInjected, match="raised instead of exiting"):
        _run_shard(SPEC.to_dict(), 0, 0, 4, SHARD_SIZE, True, plan.to_dict(), 0, False)


def test_respawned_worker_does_not_reset_the_fault_schedule():
    # The attempt number is parent-owned: shipping attempt=times means the
    # site must NOT fire again, no matter how fresh the worker process is.
    plan = FaultPlan([FaultRule(site=SITE_WORKER_DEATH, keys=(0,), times=2)])
    shard = _run_shard(SPEC.to_dict(), 0, 0, 4, SHARD_SIZE, True, plan.to_dict(), 2, False)
    assert shard.shape == (4,)


# --------------------------------------------------------------------- #
# Retry policy: validation and deterministic backoff
# --------------------------------------------------------------------- #
def test_retry_policy_validation():
    with pytest.raises(ValidationError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValidationError, match="delays"):
        RetryPolicy(base_delay_s=-0.1)
    with pytest.raises(ValidationError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValidationError, match="max_pool_restarts"):
        RetryPolicy(max_pool_restarts=-1)


def test_backoff_grows_exponentially_and_caps():
    from repro._rng import spawn_stream

    policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.3, jitter=0.0)
    rng = spawn_stream(0, _BACKOFF_DOMAIN, 0)
    assert [policy.delay(rng, n) for n in range(4)] == [0.1, 0.2, 0.3, 0.3]


def test_backoff_jitter_is_deterministic_per_shard_stream():
    from repro._rng import spawn_stream

    policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
    once = [policy.delay(spawn_stream(11, _BACKOFF_DOMAIN, k), 0) for k in range(4)]
    again = [policy.delay(spawn_stream(11, _BACKOFF_DOMAIN, k), 0) for k in range(4)]
    assert once == again
    assert len(set(once)) > 1  # distinct shard streams jitter differently
    assert all(0.05 <= d <= 0.1 for d in once)


def test_backoff_streams_do_not_touch_mc_streams():
    # MC stream for shard k is spawn_stream(seed, k); backoff is
    # spawn_stream(seed, _BACKOFF_DOMAIN, k).  Distinct draws, by domain.
    from repro._rng import spawn_stream

    mc = spawn_stream(11, 0).random(4)
    backoff = spawn_stream(11, _BACKOFF_DOMAIN, 0).random(4)
    assert not np.allclose(mc, backoff)


# --------------------------------------------------------------------- #
# The REPRO_FAULTS environment hook
# --------------------------------------------------------------------- #
def test_env_hook_activates_fault_plan(monkeypatch, reference_bytes):
    monkeypatch.setenv(
        "REPRO_FAULTS",
        '{"seed": 0, "rules": [{"site": "shard-eval", "keys": [0], "times": 1}]}',
    )
    results = run_study(SPEC, shard_size=SHARD_SIZE, retry=FAST_RETRY)
    assert results.artifact_bytes() == reference_bytes
    assert results.fault_stats.shard_retries == 1


def test_explicit_plan_overrides_env_hook(monkeypatch):
    monkeypatch.setenv(
        "REPRO_FAULTS", '{"rules": [{"site": "shard-eval", "times": 99}]}'
    )
    results = run_study(
        SPEC, shard_size=SHARD_SIZE, faults=FaultPlan([]), retry=FAST_RETRY
    )
    assert results.fault_stats.clean
