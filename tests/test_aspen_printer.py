"""Tests for the ASPEN pretty-printer (source emission and round-trips)."""

from __future__ import annotations

import pytest

from repro.aspen import (
    ApplicationModel,
    AspenEvaluator,
    ModelRegistry,
    load_paper_models,
    parse_expression,
    parse_source,
)
from repro.aspen.printer import format_expr, format_source


class TestFormatExpr:
    @pytest.mark.parametrize(
        "text",
        [
            "1 + 2 * 3",
            "(1 + 2) * 3",
            "2 ^ 3 ^ 2",
            "(2 ^ 3) ^ 2",
            "a - b - c",
            "a - (b - c)",
            "-x + 1",
            "ceil(log(1 - (A / 100)) / log(1 - S))",
            "max(a, b, 3)",
            "(EG + NG * log(NG)) * (2 * EH) * NH * NG",
        ],
    )
    def test_roundtrip_preserves_value(self, text):
        from repro.aspen import Environment, evaluate_expr

        env = Environment(
            overrides={"a": 7.0, "b": 2.0, "c": 5.0, "x": 3.0, "A": 50.0, "S": 0.5,
                       "EG": 3360.0, "NG": 1152.0, "EH": 435.0, "NH": 30.0}
        )
        original = parse_expression(text)
        reprinted = parse_expression(format_expr(original))
        assert evaluate_expr(reprinted, env) == pytest.approx(
            evaluate_expr(original, env)
        )

    def test_integers_render_cleanly(self):
        assert format_expr(parse_expression("12")) == "12"
        assert format_expr(parse_expression("2.5")) == "2.5"


class TestSourceRoundTrip:
    def test_paper_stage_models_roundtrip(self):
        """print(parse(stage_k)) evaluates identically to the original."""
        from repro.aspen.loader import bundled_models_dir

        reg = load_paper_models()
        machine = reg.machine("SimpleNode")
        ev = AspenEvaluator(machine)

        for name, socket, params in (
            ("Stage1", "intel_xeon_e5_2680", {"LPS": 37.0}),
            ("Stage2", "dwave_vesuvius_20", {"Accuracy": 99.0, "Success": 0.7}),
            ("Stage3", "intel_xeon_e5_2680", {"LPS": 37.0}),
        ):
            src_path = bundled_models_dir() / "apps" / f"{name.lower()}.aspen"
            original_ast = parse_source(src_path.read_text())
            reprinted = format_source(original_ast)
            reparsed = parse_source(reprinted)
            app_orig = ApplicationModel(original_ast.models[0])
            app_rt = ApplicationModel(reparsed.models[0])
            t_orig = ev.evaluate(app_orig, socket=socket, params=params).total_seconds
            t_rt = ev.evaluate(app_rt, socket=socket, params=params).total_seconds
            assert t_rt == pytest.approx(t_orig, rel=1e-12)

    def test_machine_roundtrip(self):
        from repro.aspen.loader import bundled_models_dir

        base = bundled_models_dir()
        text = (base / "sockets" / "dwave_vesuvius_20.aspen").read_text()
        ast = parse_source(text)

        # Re-emitted source keeps its include lines; loading it through the
        # registry resolves them against the bundled search path.
        reg = ModelRegistry()
        reg.load_text(format_source(ast))
        # Rebuild the machine around the reparsed socket.
        reg.load_text("machine Mini { [1] host nodes } node host { [1] dwave_vesuvius_20 sockets }")
        machine = reg.machine("Mini")
        lookup = machine.socket("dwave_vesuvius_20").find_resource("QuOps")
        seconds, _ = lookup.time_seconds(1, [])
        assert seconds == pytest.approx(20e-6)

    def test_full_bundled_tree_reparses(self):
        """Every bundled .aspen file survives a print/parse round trip."""
        from repro.aspen.loader import bundled_models_dir

        for path in sorted(bundled_models_dir().rglob("*.aspen")):
            ast = parse_source(path.read_text())
            reparsed = parse_source(format_source(ast))
            assert len(reparsed.models) == len(ast.models)
            assert len(reparsed.machines) == len(ast.machines)
            assert len(reparsed.components) == len(ast.components)
