"""Results-table tests: artifact round trip, slicing, core-powered analysis."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Stage1Model
from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec, StudyResults, run_study
from repro.studies.results import empty_table


@pytest.fixture(scope="module")
def results() -> StudyResults:
    spec = ScenarioSpec(
        axes={
            "lps": list(range(1, 101)),
            "accuracy": [0.9, 0.99],
            "embedding_mode": ["online", "offline"],
        },
        name="analysis",
    )
    return run_study(spec, shard_size=64)


class TestTableShape:
    def test_row_count_and_readonly(self, results):
        assert len(results) == 400
        with pytest.raises(ValueError):
            results.table["total_s"] = 0.0

    def test_unknown_column_rejected(self, results):
        with pytest.raises(ValidationError, match="unknown column"):
            results.column("wall_clock")

    def test_mismatched_table_rejected(self):
        spec = ScenarioSpec(axes={"lps": [1, 2]})
        with pytest.raises(ValidationError, match="rows"):
            StudyResults(spec=spec, table=empty_table(3))


class TestArtifactRoundTrip:
    def test_bytes_stable_and_lossless(self, results, tmp_path):
        path = results.save(tmp_path / "study.json")
        clone = StudyResults.load(path)
        assert clone.spec == results.spec
        for name in results.table.dtype.names:
            equal_nan = results.column(name).dtype.kind == "f"
            assert np.array_equal(
                clone.column(name), results.column(name), equal_nan=equal_nan
            ), name
        assert clone.to_json() == results.to_json()

    def test_no_volatile_fields(self, results):
        payload = results.to_dict()
        assert set(payload) == {"schema_version", "kind", "spec", "num_points", "columns"}

    def test_schema_version_guard(self, results):
        payload = json.loads(results.to_json())
        payload["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            StudyResults.from_dict(payload)

    def test_missing_column_guard(self, results):
        payload = json.loads(results.to_json())
        del payload["columns"]["total_s"]
        with pytest.raises(ValidationError, match="total_s"):
            StudyResults.from_dict(payload)

    def test_nan_serializes_as_null(self, results):
        assert "NaN" not in results.to_json()


class TestSlicing:
    def test_slice_requires_pinning_other_axes(self, results):
        with pytest.raises(ValidationError, match="pinned"):
            results.slice_along("lps")

    def test_slice_values(self, results):
        xs, ys = results.slice_along(
            "lps", "stage2_s", accuracy=0.99, embedding_mode="online"
        )
        assert xs.tolist() == list(range(1, 101))
        # Stage 2 is independent of LPS: one flat line per config.
        assert np.unique(ys).size == 1

    def test_dominance_counts(self, results):
        counts = results.dominance_counts(embedding_mode="online", accuracy=0.99)
        assert sum(counts.values()) == 100
        assert counts["stage1"] == 100  # the paper's headline claim


class TestCorePoweredAnalysis:
    def test_scaling_exponent_matches_direct_fit(self, results):
        """The study slice reproduces Fig. 9(a)'s asymptotic slope regime."""
        slope = results.scaling_exponent(
            "stage1_s", "lps", accuracy=0.99, embedding_mode="online"
        )
        assert 1.5 < slope < 3.5

    def test_crossover_matches_stage1_model(self, results):
        """Study crossover == Stage1Model.crossover_size()'s embedding knee."""
        lps = results.crossover_lps(
            above="stage1_s", below="stage2_s", accuracy=0.99, embedding_mode="online"
        )
        # Stage 1 already includes the 0.32 s init, so it dominates from LPS=1.
        assert lps == 1
        knee = Stage1Model().crossover_size()
        xs, embed = results.slice_along(
            "lps", "stage1_s", accuracy=0.99, embedding_mode="online"
        )
        assert 1 <= knee <= 100

    def test_elasticity_profile_positive_and_growing(self, results):
        prof = results.elasticity_profile(
            "stage1_s", "lps", accuracy=0.99, embedding_mode="online"
        )
        assert prof.shape == (100,)
        assert prof[-1] > prof[0] > 0  # polynomial order climbs toward the n^5 regime

    def test_offline_mode_kills_the_lps_dependence(self, results):
        on = results.scaling_exponent("total_s", "lps", accuracy=0.99, embedding_mode="online")
        off = results.scaling_exponent("total_s", "lps", accuracy=0.99, embedding_mode="offline")
        assert off < 0.1 < on
