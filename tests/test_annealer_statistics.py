"""Statistical correctness of the Metropolis sampler.

At a *fixed* inverse temperature, long Metropolis runs must sample the
Boltzmann distribution — the physical property that justifies using
simulated annealing as the QPU's behavioral surrogate.  These tests compare
empirical state frequencies against exact Boltzmann weights on small models
(chi-square-style tolerance) and check basic symmetry properties.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer import AnnealSchedule, SimulatedAnnealingSampler
from repro.qubo import IsingModel, iter_binary_states


def _boltzmann(model: IsingModel, beta: float) -> dict[tuple[int, ...], float]:
    states = np.vstack(list(iter_binary_states(model.num_spins))).astype(np.int8) * 2 - 1
    energies = model.energies(states)
    weights = np.exp(-beta * (energies - energies.min()))
    z = weights.sum()
    return {tuple(int(x) for x in s): float(w / z) for s, w in zip(states, weights)}


def _empirical(model: IsingModel, beta: float, reads: int, sweeps: int, seed: int):
    # Constant-temperature "schedule": many sweeps at one beta equilibrate
    # each replica; the final states are Boltzmann draws.
    schedule = AnnealSchedule(np.full(sweeps, beta))
    ss = SimulatedAnnealingSampler(schedule).sample(model, num_reads=reads, rng=seed)
    counts: dict[tuple[int, ...], int] = {}
    for row in ss.samples:
        key = tuple(int(x) for x in row)
        counts[key] = counts.get(key, 0) + 1
    return {k: v / reads for k, v in counts.items()}


class TestBoltzmannSampling:
    @pytest.mark.parametrize("beta", [0.5, 1.0])
    def test_two_spin_model(self, beta):
        model = IsingModel([0.4, -0.3], {(0, 1): 0.8})
        exact = _boltzmann(model, beta)
        emp = _empirical(model, beta, reads=4000, sweeps=30, seed=0)
        for state, p in exact.items():
            assert emp.get(state, 0.0) == pytest.approx(p, abs=0.035)

    def test_three_spin_frustrated(self):
        # Antiferromagnetic triangle: 6 degenerate ground states.
        model = IsingModel(np.zeros(3), {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0})
        beta = 1.0
        exact = _boltzmann(model, beta)
        emp = _empirical(model, beta, reads=6000, sweeps=40, seed=1)
        for state, p in exact.items():
            assert emp.get(state, 0.0) == pytest.approx(p, abs=0.035)

    def test_free_spins_uniform(self):
        model = IsingModel(np.zeros(3), {})
        emp = _empirical(model, beta=1.0, reads=4000, sweeps=5, seed=2)
        for p in emp.values():
            assert p == pytest.approx(1 / 8, abs=0.03)

    def test_spin_flip_symmetry(self):
        """With h = 0 the distribution is Z2-symmetric: P(s) = P(-s)."""
        model = IsingModel(np.zeros(2), {(0, 1): -1.0})
        emp = _empirical(model, beta=0.8, reads=6000, sweeps=30, seed=3)
        up = emp.get((1, 1), 0.0)
        down = emp.get((-1, -1), 0.0)
        assert up == pytest.approx(down, abs=0.035)

    def test_annealing_concentrates_on_ground(self):
        """Annealing from high temperature reaches the unique ground state.

        (A *fixed* low temperature would trap ~the basin fraction of
        replicas in the local minimum (+1, -1) — correct Metropolis-chain
        physics; annealing is what defeats the barrier.)
        """
        from repro.annealer import geometric_schedule

        model = IsingModel([0.5, -0.5], {(0, 1): 1.0})
        ss = SimulatedAnnealingSampler(geometric_schedule(200, 0.05, 6.0)).sample(
            model, num_reads=1500, rng=4
        )
        counts = {}
        for row in ss.samples:
            key = tuple(int(x) for x in row)
            counts[key] = counts.get(key, 0) + 1
        # Unique ground state (-1, +1) with energy -2.
        assert counts.get((-1, 1), 0) / 1500 > 0.95
