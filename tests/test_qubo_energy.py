"""Tests for brute-force reference solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.qubo import (
    IsingModel,
    Qubo,
    brute_force_ising,
    brute_force_qubo,
    exact_ground_energy,
    ground_states,
    iter_binary_states,
    random_ising,
    random_qubo,
)


class TestIteration:
    def test_counts(self):
        total = sum(b.shape[0] for b in iter_binary_states(5))
        assert total == 32

    def test_order_and_values(self):
        batches = list(iter_binary_states(3))
        states = np.vstack(batches)
        ints = (states * (2 ** np.arange(3))).sum(axis=1)
        assert ints.tolist() == list(range(8))

    def test_chunking(self):
        batches = list(iter_binary_states(6, chunk_bits=3))
        assert len(batches) == 8
        assert all(b.shape == (8, 6) for b in batches)

    def test_zero_vars(self):
        batches = list(iter_binary_states(0))
        assert len(batches) == 1 and batches[0].shape == (1, 0)

    def test_refuses_huge(self):
        with pytest.raises(ValidationError, match="refused"):
            list(iter_binary_states(40))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            list(iter_binary_states(-1))


class TestBruteForce:
    def test_qubo_minimum_is_true_minimum(self):
        q = random_qubo(8, rng=0)
        _, e = brute_force_qubo(q)
        all_states = np.vstack(list(iter_binary_states(8)))
        assert e[0] == pytest.approx(float(q.energies(all_states).min()))

    def test_ising_minimum_is_true_minimum(self):
        m = random_ising(8, rng=1)
        _, e = brute_force_ising(m)
        all_states = np.vstack(list(iter_binary_states(8))).astype(np.int8) * 2 - 1
        assert e[0] == pytest.approx(float(m.energies(all_states).min()))

    def test_num_best_sorted(self):
        q = random_qubo(6, rng=2)
        _, e = brute_force_qubo(q, num_best=10)
        assert len(e) == 10
        assert np.all(np.diff(e) >= 0)

    def test_num_best_guard(self):
        with pytest.raises(ValidationError):
            brute_force_qubo(random_qubo(3, rng=0), num_best=0)

    def test_chunk_invariance(self):
        # Same result regardless of chunking (exercises the merge logic).
        import repro.qubo.energy as energy_mod

        q = random_qubo(9, rng=3)
        full = brute_force_qubo(q, num_best=5)
        old = energy_mod._DEFAULT_CHUNK_BITS
        try:
            energy_mod._DEFAULT_CHUNK_BITS = 4
            chunked_states, chunked_e = brute_force_qubo(q, num_best=5)
        finally:
            energy_mod._DEFAULT_CHUNK_BITS = old
        assert np.allclose(full[1], chunked_e)


class TestGroundStates:
    def test_degenerate_ground_states_all_found(self):
        # Pure ferromagnet: two ground states (all up / all down).
        m = IsingModel([0.0] * 4, {(i, j): -1.0 for i in range(4) for j in range(i + 1, 4)})
        states, energy = ground_states(m)
        assert states.shape[0] == 2
        assert energy == pytest.approx(-6.0)
        rows = {tuple(r) for r in states.tolist()}
        assert (1, 1, 1, 1) in rows and (-1, -1, -1, -1) in rows

    def test_unique_ground_state(self):
        m = IsingModel([1.0, 1.0], {})
        states, energy = ground_states(m)
        assert states.shape[0] == 1
        assert energy == pytest.approx(-2.0)

    def test_exact_ground_energy(self):
        m = random_ising(7, rng=5)
        assert exact_ground_energy(m) == pytest.approx(brute_force_ising(m)[1][0])

    def test_offset_included(self):
        q = Qubo([1.0], {}, offset=10.0)
        _, e = brute_force_qubo(q)
        assert e[0] == pytest.approx(10.0)
