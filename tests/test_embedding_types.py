"""Tests for the Embedding container and the minor-embedding validator."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.embedding import Embedding, is_valid_embedding, verify_embedding
from repro.exceptions import InvalidEmbeddingError


def _path_hardware(n: int) -> nx.Graph:
    return nx.path_graph(n)


class TestEmbedding:
    def test_normalization(self):
        e = Embedding(((3, 1, 1), (2,)))
        assert e.chains == ((1, 3), (2,))

    def test_from_dict(self):
        e = Embedding.from_dict({0: [5, 4], 1: [7]})
        assert e.chains == ((4, 5), (7,))

    def test_from_dict_bad_keys(self):
        with pytest.raises(InvalidEmbeddingError, match="range"):
            Embedding.from_dict({1: [0], 2: [1]})

    def test_counts(self):
        e = Embedding(((0, 1), (2, 3, 4)))
        assert e.num_logical == 2
        assert e.num_physical == 5
        assert e.chain_lengths() == [2, 3]
        assert e.max_chain_length == 3
        assert e.used_qubits() == {0, 1, 2, 3, 4}

    def test_empty(self):
        e = Embedding(())
        assert e.num_logical == 0
        assert e.max_chain_length == 0
        assert e.overlap_count() == 0

    def test_overlap_count(self):
        e = Embedding(((0, 1), (1, 2), (2, 3)))
        assert e.overlap_count() == 2

    def test_physical_to_logical(self):
        e = Embedding(((0,), (1, 2)))
        assert e.physical_to_logical() == {0: 0, 1: 1, 2: 1}

    def test_physical_to_logical_rejects_overlap(self):
        with pytest.raises(InvalidEmbeddingError, match="both"):
            Embedding(((0,), (0,))).physical_to_logical()

    def test_as_dict(self):
        e = Embedding(((9,), (4, 5)))
        assert e.as_dict() == {0: (9,), 1: (4, 5)}


class TestVerify:
    def test_valid_path_embedding(self):
        # Two logical vertices, chain {0,1} and {2}, edge via (1, 2).
        source = nx.path_graph(2)
        hardware = _path_hardware(3)
        verify_embedding(Embedding(((0, 1), (2,))), source, hardware)

    def test_empty_chain_rejected(self):
        source = nx.path_graph(2)
        with pytest.raises(InvalidEmbeddingError, match="empty"):
            verify_embedding(Embedding(((0,), ())), source, _path_hardware(3))

    def test_unknown_hardware_node_rejected(self):
        source = nx.path_graph(2)
        with pytest.raises(InvalidEmbeddingError, match="absent"):
            verify_embedding(Embedding(((0,), (99,))), source, _path_hardware(3))

    def test_overlapping_chains_rejected(self):
        source = nx.path_graph(2)
        with pytest.raises(InvalidEmbeddingError):
            verify_embedding(Embedding(((0, 1), (1, 2))), source, _path_hardware(3))

    def test_disconnected_chain_rejected(self):
        source = nx.path_graph(2)
        hardware = _path_hardware(5)
        with pytest.raises(InvalidEmbeddingError, match="disconnected"):
            verify_embedding(Embedding(((0, 2), (1,))), source, hardware)

    def test_missing_logical_edge_rejected(self):
        source = nx.path_graph(2)
        hardware = _path_hardware(4)
        with pytest.raises(InvalidEmbeddingError, match="not realized"):
            verify_embedding(Embedding(((0,), (3,))), source, hardware)

    def test_chain_count_mismatch(self):
        with pytest.raises(InvalidEmbeddingError, match="chains"):
            verify_embedding(Embedding(((0,),)), nx.path_graph(2), _path_hardware(3))

    def test_source_must_be_canonical(self):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(InvalidEmbeddingError, match="range"):
            verify_embedding(Embedding(((0,), (1,))), g, _path_hardware(3))

    def test_self_loops_ignored(self):
        source = nx.Graph()
        source.add_nodes_from([0, 1])
        source.add_edge(0, 0)  # self loop needs no coupler
        source.add_edge(0, 1)
        verify_embedding(Embedding(((0,), (1,))), source, _path_hardware(2))

    def test_is_valid_wrapper(self):
        source = nx.path_graph(2)
        assert is_valid_embedding(Embedding(((0,), (1,))), source, _path_hardware(2))
        assert not is_valid_embedding(Embedding(((0,), (0,))), source, _path_hardware(2))

    def test_triangle_into_cell_via_chain(self, cell):
        """K3 is not a subgraph of the bipartite cell but is a minor of it."""
        g = cell.graph()
        v0 = cell.coord_to_linear((0, 0, 0, 0))
        v1 = cell.coord_to_linear((0, 0, 0, 1))
        h0 = cell.coord_to_linear((0, 0, 1, 0))
        h1 = cell.coord_to_linear((0, 0, 1, 1))
        emb = Embedding(((v0,), (h0,), (v1, h1)))
        verify_embedding(emb, nx.complete_graph(3), g)
