"""Tests for the deterministic clique (TRIAD-style) embedding."""

from __future__ import annotations

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import (
    clique_embedding,
    clique_qubit_cost,
    minimal_clique_topology,
    verify_embedding,
)
from repro.exceptions import EmbeddingError
from repro.hardware import DW2X, ChimeraTopology


class TestConstruction:
    @pytest.mark.parametrize("n", [1, 2, 4, 5, 8, 12, 16])
    def test_valid_on_minimal_topology(self, n):
        topo = minimal_clique_topology(n)
        emb = clique_embedding(n, topo)
        verify_embedding(emb, nx.complete_graph(n), topo.graph())

    def test_chain_length_is_m_plus_one(self):
        emb = clique_embedding(16)  # m = 4
        assert set(emb.chain_lengths()) == {5}

    def test_k48_on_dw2x(self):
        emb = clique_embedding(48, DW2X)
        verify_embedding(emb, nx.complete_graph(48), DW2X.graph())
        assert emb.max_chain_length == 13  # m + 1 with m = 12
        assert emb.num_physical == 48 * 13

    def test_too_small_lattice_rejected(self):
        with pytest.raises(EmbeddingError, match="too small"):
            clique_embedding(9, ChimeraTopology(2, 2, 4))

    def test_zero_rejected(self):
        with pytest.raises(EmbeddingError):
            clique_embedding(0)

    def test_defaults_to_minimal(self):
        emb = clique_embedding(6)
        topo = minimal_clique_topology(6)
        verify_embedding(emb, nx.complete_graph(6), topo.graph())


class TestCost:
    def test_qubit_cost_formula(self):
        for n in (1, 4, 7, 16, 30):
            m = max(1, math.ceil(n / 4))
            assert clique_qubit_cost(n) == n * (m + 1)

    def test_cost_matches_embedding(self):
        for n in (4, 10, 20):
            assert clique_embedding(n).num_physical == clique_qubit_cost(n)

    def test_quadratic_growth(self):
        """The paper: embedding K_n needs ~n^2 qubits (Sec. 2.2)."""
        cost_30 = clique_qubit_cost(30)
        cost_60 = clique_qubit_cost(60)
        assert 3.0 < cost_60 / cost_30 < 5.0  # ~4x for 2x size

    def test_minimal_topology_bounds(self):
        topo = minimal_clique_topology(30)
        assert topo.m == topo.n == 8
        with pytest.raises(EmbeddingError):
            minimal_clique_topology(0)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=24), l=st.integers(min_value=2, max_value=4))
def test_property_clique_embedding_always_valid(n, l):
    topo = minimal_clique_topology(n, l)
    emb = clique_embedding(n, topo)
    verify_embedding(emb, nx.complete_graph(n), topo.graph())
    # Uniform chain length m + 1.
    m = max(1, math.ceil(n / l))
    assert set(emb.chain_lengths()) == {m + 1}
