"""Tests for the ASPEN tokenizer."""

from __future__ import annotations

import pytest

from repro.aspen.lexer import Token, TokenType, tokenize
from repro.exceptions import AspenSyntaxError


def kinds(source: str) -> list[TokenType]:
    return [t.type for t in tokenize(source)]


def values(source: str) -> list[str]:
    return [t.value for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].type is TokenType.EOF

    def test_punctuation(self):
        assert kinds("{ } [ ] ( ) , =")[:-1] == [
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.EQUALS,
        ]

    def test_operators(self):
        assert kinds("+ - * / ^")[:-1] == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.CARET,
        ]

    def test_identifiers(self):
        assert values("param LPS _x a1b") == ["param", "LPS", "_x", "a1b"]

    def test_dotted_identifier_for_include_paths(self):
        assert values("ddr3_1066.aspen") == ["ddr3_1066.aspen"]

    def test_unicode_caret_alias(self):
        """The paper PDF renders '^' as a modifier circumflex."""
        toks = tokenize("LPSˆ2")
        assert [t.type for t in toks[:-1]] == [
            TokenType.IDENT,
            TokenType.CARET,
            TokenType.NUMBER,
        ]


class TestNumbers:
    @pytest.mark.parametrize(
        "text,expected",
        [("0", 0.0), ("42", 42.0), ("3.14", 3.14), ("1e6", 1e6), ("2.5e-3", 2.5e-3), (".5", 0.5)],
    )
    def test_literals(self, text, expected):
        tok = tokenize(text)[0]
        assert tok.type is TokenType.NUMBER
        assert float(tok.value) == expected

    def test_number_then_ident(self):
        toks = tokenize("4x")
        assert toks[0].value == "4" and toks[1].value == "x"


class TestComments:
    def test_line_comment(self):
        assert values("a // comment here\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(AspenSyntaxError, match="unterminated"):
            tokenize("/* never closed")

    def test_comment_at_eof(self):
        assert values("a // trailing") == ["a"]


class TestStrings:
    def test_string(self):
        toks = tokenize('"hello world"')
        assert toks[0].type is TokenType.STRING
        assert toks[0].value == "hello world"

    def test_unterminated(self):
        with pytest.raises(AspenSyntaxError, match="unterminated"):
            tokenize('"abc')


class TestPositions:
    def test_line_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_error_has_position(self):
        with pytest.raises(AspenSyntaxError, match="line 2"):
            tokenize("ok\n  @")

    def test_unexpected_character(self):
        with pytest.raises(AspenSyntaxError, match="unexpected"):
            tokenize("$")

    def test_token_repr(self):
        assert "IDENT" in repr(Token(TokenType.IDENT, "x", 1, 1))


class TestPaperListing:
    def test_fig5_core_line(self):
        src = "resource QuOps(number) [number * 20/1000000]"
        vals = values(src)
        assert vals == [
            "resource", "QuOps", "(", "number", ")", "[",
            "number", "*", "20", "/", "1000000", "]",
        ]

    def test_fig6_embedding_ops_line(self):
        src = "param EmbeddingOps = (EG+NG*log(NG))*(2*EH)*NH*NG"
        toks = tokenize(src)
        assert toks[0].value == "param"
        assert sum(1 for t in toks if t.type is TokenType.STAR) == 5
