"""Tests for the vectorized simulated-annealing sampler."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.annealer import (
    ExactSolver,
    SimulatedAnnealingSampler,
    color_classes,
    geometric_schedule,
)
from repro.exceptions import SamplerError
from repro.qubo import IsingModel, random_ising, random_qubo


class TestColorClasses:
    def test_partition_covers_all_spins(self):
        m = random_ising(10, density=0.4, rng=0)
        classes = color_classes(m)
        all_spins = sorted(int(s) for c in classes for s in c)
        assert all_spins == list(range(10))

    def test_no_intra_class_couplings(self):
        m = random_ising(12, density=0.5, rng=1)
        couplings = set(m.coupling_dict())
        for cls in color_classes(m):
            cls_set = set(cls.tolist())
            for i, j in couplings:
                assert not (i in cls_set and j in cls_set)

    def test_chimera_bipartite_two_classes(self):
        from repro.embedding import clique_embedding, embed_ising, minimal_clique_topology

        logical = random_ising(4, rng=2)
        topo = minimal_clique_topology(4)
        ei = embed_ising(logical, clique_embedding(4, topo), topo.working_graph())
        assert len(color_classes(ei.physical)) <= 2

    def test_no_couplings_single_class(self):
        m = IsingModel([1.0, -1.0], {})
        assert len(color_classes(m)) == 1


class TestSampling:
    def test_finds_ground_state_small(self):
        sa = SimulatedAnnealingSampler(geometric_schedule(200))
        ex = ExactSolver()
        for seed in range(5):
            m = random_ising(10, density=0.6, rng=seed)
            ss = sa.sample(m, num_reads=20, rng=seed)
            assert ss.lowest_energy == pytest.approx(ex.ground_energy(m), abs=1e-9)

    def test_ferromagnet_aligns(self):
        n = 8
        m = IsingModel(np.zeros(n), {(i, i + 1): -1.0 for i in range(n - 1)})
        sa = SimulatedAnnealingSampler(geometric_schedule(150))
        ss = sa.sample(m, num_reads=10, rng=0)
        best = ss.first[0]
        assert abs(int(best.sum())) == n  # all aligned

    def test_reproducible(self):
        m = random_ising(8, rng=3)
        sa = SimulatedAnnealingSampler()
        a = sa.sample(m, num_reads=5, rng=11)
        b = sa.sample(m, num_reads=5, rng=11)
        assert np.array_equal(a.samples, b.samples)

    def test_read_count(self):
        m = random_ising(5, rng=4)
        ss = SimulatedAnnealingSampler().sample(m, num_reads=17, rng=0)
        assert ss.num_reads == 17

    def test_aggregate_option(self):
        m = IsingModel(np.zeros(2), {(0, 1): -5.0})
        ss = SimulatedAnnealingSampler().sample(m, num_reads=50, rng=0, aggregate=True)
        assert ss.num_reads == 50
        assert ss.num_rows < 50  # duplicates collapsed

    def test_initial_states_respected_at_zero_temperature(self):
        # With an all-zero model every flip has dE = 0 and is accepted, so
        # use a strong ferromagnet and beta -> inf: aligned starts stay put.
        from repro.annealer import AnnealSchedule

        m = IsingModel(np.zeros(4), {(i, j): -1.0 for i in range(4) for j in range(i + 1, 4)})
        init = np.ones((3, 4), dtype=np.int8)
        sched = AnnealSchedule(np.array([50.0]))
        ss = SimulatedAnnealingSampler().sample(
            m, num_reads=3, rng=0, schedule=sched, initial_states=init
        )
        assert ss.lowest_energy == pytest.approx(-6.0)

    def test_energy_conservation_with_model(self):
        m = random_ising(9, density=0.5, rng=6)
        ss = SimulatedAnnealingSampler().sample(m, num_reads=8, rng=1)
        assert np.allclose(ss.energies, m.energies(ss.samples))

    def test_sample_qubo_wrapper(self):
        q = random_qubo(6, rng=7)
        ss = SimulatedAnnealingSampler().sample_qubo(q, num_reads=30, rng=2)
        b = ((ss.first[0] + 1) // 2).astype(float)
        assert q.energy(b) == pytest.approx(ss.first[1])

    def test_fields_only_model(self):
        m = IsingModel([5.0, -5.0], {})
        ss = SimulatedAnnealingSampler().sample(m, num_reads=5, rng=0)
        assert ss.first[0].tolist() == [-1, 1]


class TestValidation:
    def test_zero_reads_rejected(self):
        with pytest.raises(SamplerError):
            SimulatedAnnealingSampler().sample(random_ising(3, rng=0), num_reads=0)

    def test_zero_spins_rejected(self):
        with pytest.raises(SamplerError):
            SimulatedAnnealingSampler().sample(IsingModel([], {}), num_reads=1)

    def test_bad_initial_shape(self):
        m = random_ising(4, rng=0)
        with pytest.raises(SamplerError, match="shape"):
            SimulatedAnnealingSampler().sample(
                m, num_reads=2, initial_states=np.ones((3, 4), dtype=np.int8)
            )

    def test_bad_initial_values(self):
        m = random_ising(4, rng=0)
        with pytest.raises(SamplerError, match="-1/\\+1"):
            SimulatedAnnealingSampler().sample(
                m, num_reads=1, initial_states=np.zeros((1, 4), dtype=np.int8)
            )


class TestStatisticalBehavior:
    def test_success_probability_increases_with_sweeps(self):
        """Longer anneals find the ground state more often (the paper's p_s
        depends on the evolution time)."""
        m = random_ising(12, density=0.8, rng=9)
        ground = ExactSolver().ground_energy(m)
        short = SimulatedAnnealingSampler(geometric_schedule(5))
        long = SimulatedAnnealingSampler(geometric_schedule(400))
        ps_short = short.sample(m, num_reads=60, rng=0).ground_state_probability(ground)
        ps_long = long.sample(m, num_reads=60, rng=0).ground_state_probability(ground)
        assert ps_long >= ps_short
        assert ps_long > 0.5

    def test_embedded_chimera_problem(self):
        """End-to-end: logical -> embedded physical -> SA -> decode -> ground."""
        from repro.embedding import clique_embedding, embed_ising, minimal_clique_topology

        logical = random_ising(5, rng=10)
        topo = minimal_clique_topology(5)
        ei = embed_ising(logical, clique_embedding(5, topo), topo.working_graph())
        sa = SimulatedAnnealingSampler(geometric_schedule(300))
        phys = sa.sample(ei.physical, num_reads=30, rng=3)
        decoded = ei.unembed(phys.samples)
        best = min(logical.energy(s) for s in decoded)
        assert best == pytest.approx(ExactSolver().ground_energy(logical), abs=1e-9)
