"""Tests for the Fig.-1 architecture comparison simulations."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.runtime import Architecture, RequestProfile, simulate_architecture


@pytest.fixture
def profile() -> RequestProfile:
    return RequestProfile(
        ising_generation=0.001,
        embedding=0.1,
        processor_init=0.32,
        quantum_execution=0.0004,
        postprocessing=1e-6,
    )


class TestArchitectures:
    def test_dedicated_removes_contention(self, profile):
        shared = simulate_architecture(
            Architecture.SHARED, profile, num_clients=4, requests_per_client=2, rng=0
        )
        dedicated = simulate_architecture(
            Architecture.DEDICATED, profile, num_clients=4, requests_per_client=2, rng=0
        )
        assert dedicated.mean_qpu_wait == 0.0
        assert shared.mean_qpu_wait > 0.0
        assert dedicated.makespan < shared.makespan

    def test_asymmetric_adds_network_latency(self, profile):
        asym = simulate_architecture(
            Architecture.ASYMMETRIC, profile, num_clients=1, requests_per_client=1, rng=0
        )
        shared = simulate_architecture(
            Architecture.SHARED, profile, num_clients=1, requests_per_client=1, rng=0
        )
        assert asym.mean_latency > shared.mean_latency
        # Two LAN crossings at 200 us each.
        assert asym.mean_latency - shared.mean_latency == pytest.approx(4e-4, rel=1e-6)

    def test_accepts_string_names(self, profile):
        r = simulate_architecture("dedicated", profile, num_clients=2,
                                  requests_per_client=1, rng=0)
        assert r.architecture is Architecture.DEDICATED

    def test_throughput_and_counts(self, profile):
        r = simulate_architecture(
            Architecture.SHARED, profile, num_clients=3, requests_per_client=4, rng=0
        )
        assert r.total_requests == 12
        assert r.throughput == pytest.approx(12 / r.makespan)

    def test_single_client_no_contention_anywhere(self, profile):
        for arch in Architecture:
            r = simulate_architecture(arch, profile, num_clients=1,
                                      requests_per_client=3, rng=0)
            assert r.mean_qpu_wait == 0.0

    def test_latency_grows_with_clients_on_shared(self, profile):
        lat = [
            simulate_architecture(
                Architecture.SHARED, profile, num_clients=k, requests_per_client=1, rng=0
            ).mean_latency
            for k in (1, 2, 4, 8)
        ]
        assert lat == sorted(lat)
        assert lat[-1] > lat[0]

    def test_think_time_reduces_contention(self, profile):
        busy = simulate_architecture(
            Architecture.SHARED, profile, num_clients=4, requests_per_client=3,
            mean_think_time=0.0, rng=1,
        )
        relaxed = simulate_architecture(
            Architecture.SHARED, profile, num_clients=4, requests_per_client=3,
            mean_think_time=10.0, rng=1,
        )
        assert relaxed.mean_qpu_wait < busy.mean_qpu_wait

    def test_validation(self, profile):
        with pytest.raises(ValidationError):
            simulate_architecture(Architecture.SHARED, profile, num_clients=0)
        with pytest.raises(ValueError):
            simulate_architecture("warp-drive", profile)

    def test_trace_has_all_sessions(self, profile):
        r = simulate_architecture(
            Architecture.SHARED, profile, num_clients=2, requests_per_client=2, rng=0
        )
        assert r.trace.sessions() == [0, 1, 2, 3]
