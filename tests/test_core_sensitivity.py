"""Tests for the parameter-sensitivity (elasticity) analysis."""

from __future__ import annotations

import pytest

from repro.core import SplitExecutionModel, elasticity, model_elasticities
from repro.exceptions import ValidationError


class TestElasticity:
    def test_power_laws(self):
        assert elasticity(lambda x: x**2, 3.0) == pytest.approx(2.0, abs=1e-6)
        assert elasticity(lambda x: 5.0 / x, 2.0) == pytest.approx(-1.0, abs=1e-6)
        assert elasticity(lambda x: 7.0, 1.0) == pytest.approx(0.0, abs=1e-12)

    def test_guards(self):
        with pytest.raises(ValidationError):
            elasticity(lambda x: x, 0.0)
        with pytest.raises(ValidationError):
            elasticity(lambda x: x, 1.0, rel_step=1.5)
        with pytest.raises(ValidationError):
            elasticity(lambda x: x - 10.0, 1.0)  # negative values


class TestModelElasticities:
    @pytest.fixture(scope="class")
    def elasticities(self) -> dict[str, float]:
        return model_elasticities(lps=50)

    def test_cpu_clock_is_the_lever(self, elasticities):
        """Doubling the CPU clock ~halves the total (embedding is compute-bound)."""
        assert elasticities["cpu_clock_hz"] == pytest.approx(-1.0, abs=0.02)

    def test_qpu_parameters_are_irrelevant(self, elasticities):
        """The paper's abstract: 'the primary time cost is independent of
        quantum processor behavior'."""
        assert abs(elasticities["anneal_duration_us"]) < 1e-3
        assert abs(elasticities["success_probability"]) < 1e-3

    def test_data_movement_is_negligible(self, elasticities):
        assert abs(elasticities["memory_bandwidth"]) < 1e-3
        assert abs(elasticities["pcie_bandwidth"]) < 1e-3

    def test_offline_mode_shifts_sensitivities(self):
        """With offline embedding the clock no longer dominates (the constant
        programming cost does)."""
        offline = model_elasticities(SplitExecutionModel(embedding_mode="offline"), lps=50)
        assert abs(offline["cpu_clock_hz"]) < 0.1
