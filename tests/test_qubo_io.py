"""Tests for COO-format problem serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.qubo import IsingModel, Qubo, random_ising, random_qubo
from repro.qubo.io import (
    dumps_ising,
    dumps_qubo,
    load_problem,
    loads_ising,
    loads_qubo,
    save_problem,
)


class TestRoundTrip:
    def test_qubo(self):
        q = random_qubo(6, density=0.5, rng=0)
        q2 = loads_qubo(dumps_qubo(q))
        assert q2 == q

    def test_ising(self):
        m = random_ising(6, density=0.5, rng=1)
        m2 = loads_ising(dumps_ising(m))
        assert m2 == m

    def test_offset_preserved(self):
        q = Qubo([1.0], {}, offset=2.5)
        assert loads_qubo(dumps_qubo(q)).offset == 2.5

    def test_zero_offset_omitted(self):
        assert "offset" not in dumps_qubo(Qubo([1.0], {}))

    def test_file_round_trip(self, tmp_path):
        q = random_qubo(5, rng=2)
        path = tmp_path / "problem.coo"
        save_problem(q, path)
        assert load_problem(path) == q

    def test_file_round_trip_ising(self, tmp_path):
        m = random_ising(5, rng=3)
        path = tmp_path / "problem.coo"
        save_problem(m, path)
        loaded = load_problem(path)
        assert isinstance(loaded, IsingModel)
        assert loaded == m

    def test_empty_problem(self):
        q = Qubo([])
        assert loads_qubo(dumps_qubo(q)).num_variables == 0


class TestParsing:
    def test_comments_and_blank_lines(self):
        text = "# a comment\n\nqubo 2\n0 0 1.0  # trailing comment\n0 1 -2.0\n"
        q = loads_qubo(text)
        assert q.linear[0] == 1.0
        assert q.quadratic_dict() == {(0, 1): -2.0}

    def test_duplicate_entries_accumulate(self):
        q = loads_qubo("qubo 2\n0 1 1.0\n1 0 2.0\n0 0 0.5\n0 0 0.5\n")
        assert q.quadratic_dict() == {(0, 1): 3.0}
        assert q.linear[0] == 1.0

    def test_errors(self):
        with pytest.raises(ValidationError, match="header"):
            loads_qubo("bogus 3")
        with pytest.raises(ValidationError, match="empty"):
            loads_qubo("# nothing\n")
        with pytest.raises(ValidationError, match="outside"):
            loads_qubo("qubo 2\n0 5 1.0\n")
        with pytest.raises(ValidationError, match="i j value"):
            loads_qubo("qubo 2\n0 1\n")
        with pytest.raises(ValidationError, match="expected a qubo"):
            loads_qubo("ising 2\n0 0 1.0\n")
        with pytest.raises(ValidationError, match="expected an ising"):
            loads_ising("qubo 2\n0 0 1.0\n")
        with pytest.raises(ValidationError, match="bad size"):
            loads_qubo("qubo many\n")

    def test_save_rejects_unknown_type(self, tmp_path):
        with pytest.raises(ValidationError):
            save_problem("not a problem", tmp_path / "x.coo")  # type: ignore[arg-type]


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=8),
    density=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_round_trip_preserves_energies(n, density, seed):
    q = random_qubo(n, density=density, rng=seed)
    q2 = loads_qubo(dumps_qubo(q))
    gen = np.random.default_rng(seed)
    B = gen.integers(0, 2, size=(16, n))
    assert np.allclose(q.energies(B), q2.energies(B))
