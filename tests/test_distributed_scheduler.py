"""The scheduling strategies and the deterministic dispatch simulation."""

import threading

import pytest

pytestmark = pytest.mark.distributed

from repro.distributed.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_NAMES,
    Scheduler,
    SizeAwareScheduler,
    StaticScheduler,
    WorkStealingScheduler,
    get_scheduler,
    preferred_slot,
    shard_costs,
    shard_schedule,
    simulate_schedule,
)
from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec


SPEC = ScenarioSpec(
    name="sched",
    axes={
        "lps": list(range(1, 13)),
        "backend": ["closed_form", "des"],
    },
)


class TestRegistry:
    def test_names_round_trip(self):
        for name in SCHEDULER_NAMES:
            strategy = get_scheduler(name)
            assert isinstance(strategy, Scheduler)
            assert strategy.name == name

    def test_default_is_registered(self):
        assert DEFAULT_SCHEDULER in SCHEDULER_NAMES

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="scheduler"):
            get_scheduler("round-robin")


class TestPreferredSlot:
    def test_contiguous_blocks(self):
        # 10 shards over 3 slots: slot owns a contiguous block.
        owners = [preferred_slot(k, 10, 3) for k in range(10)]
        assert owners == sorted(owners)
        assert set(owners) == {0, 1, 2}

    def test_single_slot_owns_everything(self):
        assert all(preferred_slot(k, 7, 1) == 0 for k in range(7))


class TestSelection:
    COSTS = [4.0, 1.0, 9.0, 1.0, 2.0, 7.0]

    def test_static_prefers_own_block(self):
        s = StaticScheduler()
        # Slot 1 of 2 owns the back half of a 6-shard grid: indices 3..5.
        assert s.select([0, 1, 3, 4, 5], 1, 2, self.COSTS) == 3
        # Own block exhausted: crosses over to the lowest remaining index.
        assert s.select([0, 1], 1, 2, self.COSTS) == 0

    def test_work_stealing_takes_lowest_pending(self):
        s = WorkStealingScheduler()
        # Slot 1's static block is 3..5, but self-scheduling ignores it.
        assert s.select([2, 4, 5], 1, 2, self.COSTS) == 2

    def test_size_aware_takes_largest_cost(self):
        s = SizeAwareScheduler()
        assert s.select([0, 2, 5], 0, 2, self.COSTS) == 2  # cost 9.0
        # Tie on cost: lowest index wins (deterministic).
        assert s.select([1, 3], 0, 2, self.COSTS) == 1


class TestSimulation:
    def test_costs_positive_and_shard_shaped(self):
        costs = shard_costs(SPEC, 5)
        assert len(costs) == (SPEC.num_points + 4) // 5
        assert all(c > 0 for c in costs)

    def test_des_shards_cost_more_than_closed_form(self):
        # The nominal backend weights order the halves of the grid.
        costs = shard_costs(SPEC, 12)  # one shard per backend block
        assert costs[1] > costs[0]

    def test_trace_is_deterministic(self):
        a = simulate_schedule([3.0, 1.0, 2.0, 5.0], 2, WorkStealingScheduler())
        b = simulate_schedule([3.0, 1.0, 2.0, 5.0], 2, WorkStealingScheduler())
        assert a.finish_s == b.finish_s
        assert a.slot == b.slot
        assert a.stolen == b.stolen

    def test_every_shard_finishes(self):
        trace = simulate_schedule([1.0] * 7, 3, StaticScheduler())
        assert len(trace.finish_s) == 7
        assert all(f > 0 for f in trace.finish_s)
        assert trace.makespan_s == max(trace.finish_s)

    def test_static_never_steals_on_balanced_grid(self):
        trace = simulate_schedule([1.0] * 8, 4, StaticScheduler())
        assert trace.total_steals == 0

    def test_strategies_differ_on_skewed_grid(self):
        costs = shard_costs(SPEC, 2)
        traces = {
            name: shard_schedule(SPEC, 2, name) for name in SCHEDULER_NAMES
        }
        assert len(costs) == len(traces["static"].finish_s)
        # At least two strategies must disagree somewhere, else the axis
        # would be decorative.
        latencies = {tuple(t.finish_s) for t in traces.values()}
        assert len(latencies) >= 2

    def test_size_aware_makespan_never_worse_than_static(self):
        # LPT is a 4/3-approximation; list-static has no such guarantee on
        # skewed grids.  On this grid LPT must not lose.
        costs = shard_costs(SPEC, 2)
        lpt = simulate_schedule(costs, 4, SizeAwareScheduler())
        static = simulate_schedule(costs, 4, StaticScheduler())
        assert lpt.makespan_s <= static.makespan_s + 1e-12

    def test_memoized_trace_is_shared(self):
        t1 = shard_schedule(SPEC, 3, "static")
        t2 = shard_schedule(SPEC, 3, "static")
        assert t1 is t2

    def test_memoization_is_thread_safe(self):
        out = []

        def worker():
            out.append(shard_schedule(SPEC, 4, "size-aware"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(t is out[0] for t in out)
