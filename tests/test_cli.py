"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.lps == 50 and args.accuracy == 0.99 and args.success == 0.7

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["warp"])


class TestCommands:
    def test_predict(self, capsys):
        assert main(["predict", "--lps", "30"]) == 0
        out = capsys.readouterr().out
        assert "stage 1" in out and "dominant stage" in out and "stage1" in out

    def test_predict_offline(self, capsys):
        assert main(["predict", "--lps", "30", "--embedding-mode", "offline"]) == 0
        out = capsys.readouterr().out
        assert "offline" in out

    def test_solve(self, capsys):
        assert main(["solve", "--spins", "5", "--reads", "20", "--cells", "3"]) == 0
        out = capsys.readouterr().out
        assert "best energy" in out and "exact ground" in out

    def test_embed(self, capsys):
        assert main([
            "embed", "--vertices", "8", "--density", "0.3", "--cells", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "physical qubits" in out and "max chain" in out

    def test_fig9(self, capsys):
        assert main(["fig9", "--max-lps", "30"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9(a)" in out and "Fig. 9(b)" in out

    def test_predict_backend_variants(self, capsys):
        assert main(["predict", "--lps", "30", "--backend", "aspen"]) == 0
        assert "backend=aspen" in capsys.readouterr().out
        assert main(["predict", "--lps", "30", "--backend", "des"]) == 0
        assert "backend=des" in capsys.readouterr().out

    def test_predict_unknown_backend_exits_2(self, capsys):
        assert main(["predict", "--backend", "warp"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_predict_backend_capability_violation_exits_2(self, capsys):
        code = main([
            "predict", "--backend", "aspen", "--embedding-mode", "offline",
        ])
        assert code == 2
        assert "not supported" in capsys.readouterr().err

    def test_fig9_backend_variant(self, capsys):
        assert main(["fig9", "--max-lps", "10", "--backend", "closed_form"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("backend: closed_form")
        assert "Fig. 9(a)" in out
        assert main(["fig9", "--backend", "warp"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_study_backend_axis_flag(self, capsys):
        assert main([
            "study", "--lps", "1:4", "--backend", "closed_form,des", "--no-summary",
        ]) == 0
        assert "evaluated 6 points" in capsys.readouterr().out
        assert main(["study", "--lps", "1:4", "--backend", "warp"]) == 2
        assert "unknown backend" in capsys.readouterr().err
