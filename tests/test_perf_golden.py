"""Golden-seed reproducibility of the rewritten hot kernels.

``tests/data/golden_kernels.json`` was frozen from the pre-optimization
(seed) implementations of ``SimulatedAnnealingSampler.sample`` and
``brute_force_{ising,qubo}``.  The optimized kernels must return
*bit-identical* spin/state arrays for the same fixed seeds; energies are
held to float64 round-off (1e-12) because the CSR-routed
:meth:`IsingModel.energies` legitimately reassociates the coupling sum.

If one of these tests fails, the kernel rewrite changed observable
behavior — fix the kernel, do not regenerate the goldens (see
``tests/_golden_workloads.py``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import _golden_workloads as gw


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(gw.GOLDEN_PATH.read_text())


class TestSimulatedAnnealingGolden:
    @pytest.mark.parametrize("name", sorted(gw.sa_cases()))
    def test_samples_bit_identical(self, golden, name):
        case = gw.sa_cases()[name]
        ss = gw.run_sa_case(case)
        expected = golden["sa"][name]
        assert np.array_equal(ss.samples, np.array(expected["samples"], dtype=np.int8))
        assert np.array_equal(
            ss.num_occurrences, np.array(expected["num_occurrences"], dtype=np.int64)
        )

    @pytest.mark.parametrize("name", sorted(gw.sa_cases()))
    def test_energies_within_roundoff(self, golden, name):
        case = gw.sa_cases()[name]
        ss = gw.run_sa_case(case)
        assert np.allclose(
            ss.energies, np.array(golden["sa"][name]["energies"]), rtol=1e-12, atol=1e-12
        )

    def test_repeat_call_uses_cached_plan(self):
        """Memoized sweep structure must not change results across calls."""
        case = gw.sa_cases()["sa_random12"]
        first = gw.run_sa_case(case)
        second = gw.run_sa_case(case)
        assert np.array_equal(first.samples, second.samples)


class TestBruteForceGolden:
    @pytest.mark.parametrize("name", sorted(gw.brute_force_cases()))
    def test_states_bit_identical(self, golden, name):
        case = gw.brute_force_cases()[name]
        states, _ = gw.run_brute_force_case(case)
        assert np.array_equal(states, np.array(golden["brute_force"][name]["states"]))

    @pytest.mark.parametrize("name", sorted(gw.brute_force_cases()))
    def test_energies_within_roundoff(self, golden, name):
        case = gw.brute_force_cases()[name]
        _, energies = gw.run_brute_force_case(case)
        assert np.allclose(
            energies,
            np.array(golden["brute_force"][name]["energies"]),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_degenerate_ties_exact(self, golden):
        """Integer-valued energies are exact, so the tie case matches bitwise."""
        _, energies = gw.run_brute_force_case(gw.brute_force_cases()["bf_ising_ties"])
        assert np.array_equal(
            energies, np.array(golden["brute_force"]["bf_ising_ties"]["energies"])
        )
