"""Tests for annealing schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer import AnnealSchedule, geometric_schedule, linear_schedule
from repro.exceptions import ValidationError


class TestConstruction:
    def test_linear(self):
        s = linear_schedule(10, 0.1, 1.0)
        assert s.num_sweeps == 10
        assert s.betas[0] == pytest.approx(0.1)
        assert s.betas[-1] == pytest.approx(1.0)

    def test_geometric(self):
        s = geometric_schedule(5, 0.1, 10.0)
        ratios = s.betas[1:] / s.betas[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_monotone_enforced(self):
        with pytest.raises(ValidationError, match="non-decreasing"):
            AnnealSchedule(np.array([1.0, 0.5]))

    def test_negative_rejected(self):
        with pytest.raises(ValidationError, match="non-negative"):
            AnnealSchedule(np.array([-1.0, 0.5]))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            AnnealSchedule(np.array([]))

    def test_bad_factory_args(self):
        with pytest.raises(ValidationError):
            linear_schedule(0)
        with pytest.raises(ValidationError):
            linear_schedule(5, 2.0, 1.0)
        with pytest.raises(ValidationError):
            geometric_schedule(5, 0.0, 1.0)

    def test_betas_read_only(self):
        s = linear_schedule(4)
        with pytest.raises(ValueError):
            s.betas[0] = 99.0


class TestStretch:
    def test_stretch_doubles_sweeps(self):
        s = linear_schedule(100, 0.1, 5.0)
        s2 = s.stretched(2.0)
        assert s2.num_sweeps == 200
        assert s2.betas[0] == pytest.approx(0.1)
        assert s2.betas[-1] == pytest.approx(5.0)

    def test_stretch_shrinks(self):
        s = linear_schedule(100)
        assert s.stretched(0.5).num_sweeps == 50

    def test_stretch_preserves_waveform(self):
        s = geometric_schedule(64, 0.1, 8.0)
        s2 = s.stretched(4.0)
        # Still monotone, same endpoints.
        assert s2.betas[0] == pytest.approx(0.1)
        assert s2.betas[-1] == pytest.approx(8.0)
        assert np.all(np.diff(s2.betas) >= 0)

    def test_stretch_minimum_one(self):
        assert linear_schedule(3).stretched(0.01).num_sweeps == 1

    def test_bad_factor(self):
        with pytest.raises(ValidationError):
            linear_schedule(3).stretched(0.0)

    def test_nonfinite_factor_rejected(self):
        """Regression: NaN passed the `factor <= 0` guard unnoticed."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValidationError, match="finite"):
                linear_schedule(3).stretched(bad)


class TestNonFiniteBetas:
    """Regression: `np.any(b < 0)` and `np.any(np.diff(b) < 0)` are both
    False for NaN arrays, so NaN betas used to construct successfully."""

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="finite"):
            AnnealSchedule(np.array([0.1, float("nan"), 1.0]))

    def test_all_nan_rejected(self):
        with pytest.raises(ValidationError, match="finite"):
            AnnealSchedule(np.full(4, np.nan))

    def test_inf_rejected(self):
        with pytest.raises(ValidationError, match="finite"):
            AnnealSchedule(np.array([0.1, np.inf]))

    def test_nonfinite_factory_endpoints_rejected(self):
        with pytest.raises(ValidationError):
            linear_schedule(5, float("nan"), 1.0)
        with pytest.raises(ValidationError):
            geometric_schedule(5, 0.1, float("nan"))
        with pytest.raises(ValidationError):
            linear_schedule(5, 0.1, float("inf"))
