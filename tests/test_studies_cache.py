"""Content-addressed study-cache tests: keying rule, reuse, corruption.

The cache's value proposition is "byte-identical results, computed once";
these tests pin the keying rule documented in ``repro/studies/cache.py``
— what *must* share a key (re-labelled studies, explicitly-spelled
defaults), what *must not* (different seeds, MC settings, shard sizes) —
and the defensive behavior on corrupt entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec, StudyCache, run_study
from repro.studies.executor import _run_shard
from repro.studies.results import empty_table


@pytest.fixture
def spec() -> ScenarioSpec:
    return ScenarioSpec(
        axes={"lps": [1, 2, 3, 4], "accuracy": [0.9, 0.99]},
        name="cache-spec",
        mc_trials=16,
        seed=2,
    )


@pytest.fixture
def cache(tmp_path) -> StudyCache:
    return StudyCache(tmp_path / "cache")


class TestKeyingRule:
    def test_key_is_stable_and_hex(self, spec):
        k1 = StudyCache.shard_key(spec, 4, 0)
        k2 = StudyCache.shard_key(spec, 4, 0)
        assert k1 == k2
        assert len(k1) == 64 and int(k1, 16) >= 0

    def test_name_is_excluded_from_the_key(self, spec):
        relabelled = ScenarioSpec(
            axes=dict(spec.axes), name="other-label",
            mc_trials=spec.mc_trials, seed=spec.seed,
        )
        assert StudyCache.shard_key(spec, 4, 0) == StudyCache.shard_key(relabelled, 4, 0)

    def test_explicit_defaults_collapse_to_absent_axes(self):
        bare = ScenarioSpec(axes={"lps": [1, 2]})
        spelled = ScenarioSpec(
            axes={"lps": [1, 2], "accuracy": [0.99], "backend": ["closed_form"]}
        )
        assert StudyCache.shard_key(bare, 2, 0) == StudyCache.shard_key(spelled, 2, 0)

    def test_grid_and_shard_identity_are_in_the_key(self, spec):
        base = StudyCache.shard_key(spec, 4, 0)
        assert StudyCache.shard_key(spec, 4, 1) != base
        assert StudyCache.shard_key(spec, 8, 0) != base
        reseeded = ScenarioSpec(
            axes=dict(spec.axes), name=spec.name, mc_trials=spec.mc_trials, seed=3
        )
        assert StudyCache.shard_key(reseeded, 4, 0) != base
        no_mc = ScenarioSpec(axes=dict(spec.axes), name=spec.name)
        assert StudyCache.shard_key(no_mc, 4, 0) != base
        other_grid = ScenarioSpec(axes={"lps": [1, 2, 3, 4]}, mc_trials=16, seed=2)
        assert StudyCache.shard_key(other_grid, 4, 0) != base

    def test_bad_shard_geometry_rejected(self, spec):
        with pytest.raises(ValidationError, match="shard_size"):
            StudyCache.shard_key(spec, 0, 0)
        with pytest.raises(ValidationError, match="out of range"):
            StudyCache(".").load_shard(spec, 4, 99)


class TestStoreAndLoad:
    def test_roundtrip_bytes(self, spec, cache):
        shard = _run_shard(spec.to_dict(), 0, 0, 4, 4, True)
        cache.store_shard(spec, 4, 0, shard)
        loaded = cache.load_shard(spec, 4, 0)
        assert loaded.tobytes() == shard.tobytes()
        assert cache.stats() == {"hits": 1, "misses": 0, "requests": 1}

    def test_miss_on_absent_entry(self, spec, cache):
        assert cache.load_shard(spec, 4, 0) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "requests": 1}

    def test_wrong_shape_store_rejected(self, spec, cache):
        with pytest.raises(ValidationError, match="shard table"):
            cache.store_shard(spec, 4, 0, empty_table(3))

    def test_corrupt_entry_is_a_miss_and_heals(self, spec, cache):
        shard = _run_shard(spec.to_dict(), 0, 0, 4, 4, True)
        path = cache.store_shard(spec, 4, 0, shard)
        path.write_bytes(path.read_bytes()[:10])  # torn write
        assert cache.load_shard(spec, 4, 0) is None
        # A study run recomputes and rewrites the entry...
        results = run_study(spec, shard_size=4, cache=cache)
        # ...after which it serves correctly again.
        assert cache.load_shard(spec, 4, 0).tobytes() == shard.tobytes()
        # Bytewise: NaN-filled columns (contention metrics on non-DES rows)
        # would defeat a value-level structured comparison.
        assert results.table[0:4].tobytes() == shard.tobytes()

    def test_every_truncation_length_is_a_miss(self, spec, cache):
        # A partial write can tear at any byte; no prefix length may ever
        # parse as a valid entry (the loader checks exact size, not magic).
        shard = _run_shard(spec.to_dict(), 0, 0, 4, 4, True)
        path = cache.store_shard(spec, 4, 0, shard)
        whole = path.read_bytes()
        for cut in (0, 1, 7, len(whole) // 2, len(whole) - 1):
            path.write_bytes(whole[:cut])
            assert cache.load_shard(spec, 4, 0) is None, f"cut at {cut} served"
        # An entry *grown* past its size (appended garbage) is equally a miss.
        path.write_bytes(whole + b"\x00")
        assert cache.load_shard(spec, 4, 0) is None

    def test_unreadable_entry_is_a_miss_not_an_error(self, spec, cache):
        # chmod tricks don't bite when tests run as root; a directory squatting
        # on the entry path raises the same OSError family on read_bytes().
        shard = _run_shard(spec.to_dict(), 0, 0, 4, 4, True)
        path = cache.store_shard(spec, 4, 0, shard)
        path.unlink()
        path.mkdir()
        assert cache.load_shard(spec, 4, 0) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "requests": 1}


class TestFaultInjectedCache:
    """A cache under injected faults must never poison an artifact."""

    def test_read_and_write_faults_leave_bytes_identical(self, spec, cache, tmp_path):
        from repro.faults import FaultPlan

        reference = run_study(spec, shard_size=4).artifact_bytes()
        plan = FaultPlan.from_dict(
            {
                "seed": 0,
                "rules": [
                    {"site": "cache-read", "keys": [0], "times": 1, "effect": "corrupt"},
                    {"site": "cache-read", "keys": [1], "times": 1},
                    {"site": "cache-write", "keys": [1], "times": 1},
                ],
            }
        )
        run_study(spec, shard_size=4, cache=cache)  # warm
        faulted = run_study(spec, shard_size=4, cache=cache, faults=plan)
        assert faulted.artifact_bytes() == reference
        assert faulted.fault_stats.cache_read_faults == 2
        assert faulted.fault_stats.cache_write_faults == 1
        # The store healed: a later fault-free run over the same directory
        # serves everything and still matches the reference bytes.
        healed_counter = StudyCache(cache.root)
        healed = run_study(spec, shard_size=4, cache=healed_counter)
        assert healed.artifact_bytes() == reference
        assert healed_counter.stats() == {"hits": 2, "misses": 0, "requests": 2}


class TestCachedStudies:
    def test_warm_run_is_byte_identical_and_all_hits(self, spec, cache):
        cold = run_study(spec, shard_size=4, cache=cache)
        assert cache.stats() == {"hits": 0, "misses": 2, "requests": 2}
        warm = run_study(spec, shard_size=4, cache=cache)
        assert warm.to_json() == cold.to_json()
        assert cache.stats() == {"hits": 2, "misses": 2, "requests": 4}

    def test_cache_matches_uncached_run(self, spec, cache):
        assert (
            run_study(spec, shard_size=4, cache=cache).to_json()
            == run_study(spec, shard_size=4).to_json()
        )

    def test_relabelled_study_reuses_shards(self, spec, cache):
        run_study(spec, shard_size=4, cache=cache)
        relabelled = ScenarioSpec(
            axes=dict(spec.axes), name="dashboard-rerun",
            mc_trials=spec.mc_trials, seed=spec.seed,
        )
        fresh_counter = StudyCache(cache.root)
        results = run_study(relabelled, shard_size=4, cache=fresh_counter)
        assert fresh_counter.stats() == {"hits": 2, "misses": 0, "requests": 2}
        assert results.spec.name == "dashboard-rerun"

    def test_multiprocess_run_populates_and_serves(self, spec, cache):
        cold = run_study(spec, workers=2, shard_size=2, cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        warm = run_study(spec, workers=2, shard_size=2, cache=cache)
        assert cache.hits == 4
        assert warm.to_json() == cold.to_json()

    def test_partial_overlap_only_computes_new_shards(self, spec, cache):
        run_study(spec, shard_size=4, cache=cache)
        # Same grid, same shard grid, cache already warm: a different
        # StudyCache object over the same directory sees pure hits.
        counter = StudyCache(cache.root)
        run_study(spec, shard_size=4, cache=counter)
        assert counter.stats() == {"hits": 2, "misses": 0, "requests": 2}


class TestCliCacheFlag:
    def test_study_cache_flag_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "study", "--lps", "1:9", "--accuracy", "0.9,0.99",
            "--name", "cli-cache", "--no-summary",
            "--cache", str(tmp_path / "cache"),
        ]
        assert main(argv + ["--out", str(tmp_path / "a.json")]) == 0
        cold_out = capsys.readouterr().out
        assert "cache: served 0/1 shards from cache" in cold_out
        assert main(argv + ["--out", str(tmp_path / "b.json")]) == 0
        warm_out = capsys.readouterr().out
        assert "cache: served 1/1 shards from cache" in warm_out
        assert (tmp_path / "a.json").read_bytes() == (tmp_path / "b.json").read_bytes()
