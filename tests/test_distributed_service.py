"""The distributed service over live HTTP: lease/push/fail, health, bytes.

A :class:`StudyServer` with ``distributed=True`` executes submitted jobs
by leasing shards to HTTP workers.  This suite pins the wire protocol of
the three ``/distributed/*`` routes (raw ``http.client``, mirroring
``test_service.py``), the healthz/status observability additions, and —
the point of it all — that the served artifact is byte-identical to a
plain single-process server's artifact for the same spec.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import threading
import time

import pytest

pytestmark = pytest.mark.distributed

from repro.distributed.worker import HttpCoordinatorTransport, ShardWorker
from repro.exceptions import PushRejected, ValidationError
from repro.faults import FaultPlan
from repro.service import StudyServer
from repro.service.protocol import (
    ERR_NOT_DISTRIBUTED,
    ERR_SHARD_REJECTED,
    ERR_UNKNOWN_STUDY,
    HEADER_LEASE_ID,
    HEADER_SHARD_DIGEST,
    HEADER_SHARD_INDEX,
    HEADER_SHARD_STUDY,
    HEADER_WORKER_ID,
)
from repro.studies import ScenarioSpec, run_study

SPEC_PAYLOAD = {
    "name": "dist-e2e",
    "axes": {"lps": [1, 2, 3, 4, 5, 6], "accuracy": [0.9, 0.99]},
    "mc_trials": 2,
    "seed": 3,
}
SHARD_SIZE = 4  # 12 points -> 3 shards

NO_FAULTS = FaultPlan([])


def request(server, method, path, payload=None, raw_body=None, headers=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = raw_body
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def wait_done(server, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        status, _, body = request(server, "GET", f"/studies/{job_id}")
        assert status == 200
        snapshot = json.loads(body)
        if snapshot["state"] in ("done", "failed"):
            return snapshot
        assert time.monotonic() < deadline, f"job {job_id} stuck {snapshot['state']}"
        time.sleep(0.02)


@pytest.fixture()
def server(tmp_path):
    with StudyServer(
        cache=tmp_path / "cache",
        shard_size=SHARD_SIZE,
        distributed=True,
        lease_ttl_s=0.3,
    ) as srv:
        yield srv


@pytest.fixture()
def plain_server():
    with StudyServer(job_workers=0) as srv:
        yield srv


def attach_workers(server, count, **worker_kwargs):
    """HTTP worker threads against ``server``; returns (stop_event, join)."""
    stop = threading.Event()
    workers = [
        ShardWorker(
            HttpCoordinatorTransport(server.url),
            worker_id=f"hw{i}",
            faults=NO_FAULTS,
            poll_s=0.01,
            **worker_kwargs,
        )
        for i in range(count)
    ]
    threads = [
        threading.Thread(target=w.run, kwargs={"stop": stop}) for w in workers
    ]
    for t in threads:
        t.start()

    def join():
        stop.set()
        for t in threads:
            t.join()

    return workers, join


# --------------------------------------------------------------------- #
# End to end
# --------------------------------------------------------------------- #
def test_distributed_job_is_byte_identical_to_local(server):
    reference = run_study(
        ScenarioSpec.from_dict(SPEC_PAYLOAD), shard_size=SHARD_SIZE
    ).artifact_bytes()
    workers, join = attach_workers(server, 2)
    try:
        status, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
        assert status == 202
        job_id = json.loads(body)["job_id"]
        snapshot = wait_done(server, job_id)
        assert snapshot["state"] == "done"
        # Per-worker attribution in the status progress.
        attribution = snapshot["progress"]["workers"]
        assert sum(attribution.values()) == 3
        assert set(attribution) <= {"hw0", "hw1"}
        _, _, artifact = request(server, "GET", f"/studies/{job_id}/artifact")
        assert artifact == reference
    finally:
        join()
    # The workers really did the work over HTTP.
    assert sum(w.stats.shards_completed for w in workers) == 3
    assert server.manager.executed_shards == 3


def test_workerless_distributed_server_drains_inline(tmp_path):
    # Liveness: no fleet attached -> the job still completes (and matches).
    with StudyServer(
        cache=tmp_path / "cache",
        shard_size=SHARD_SIZE,
        distributed=True,
        lease_ttl_s=0.2,  # short stall slice: drain kicks in fast
    ) as srv:
        status, _, body = request(srv, "POST", "/studies", SPEC_PAYLOAD)
        assert status == 202
        job_id = json.loads(body)["job_id"]
        snapshot = wait_done(srv, job_id)
        assert snapshot["state"] == "done"
        assert snapshot["progress"]["workers"] == {"<coordinator>": 3}
        _, _, artifact = request(srv, "GET", f"/studies/{job_id}/artifact")
    reference = run_study(
        ScenarioSpec.from_dict(SPEC_PAYLOAD), shard_size=SHARD_SIZE
    ).artifact_bytes()
    assert artifact == reference


# --------------------------------------------------------------------- #
# The wire protocol of the three verbs
# --------------------------------------------------------------------- #
def submit_and_lease(server):
    """Submit the standard spec and pull one lease once it is registered."""
    request(server, "POST", "/studies", SPEC_PAYLOAD)
    deadline = time.monotonic() + 10.0
    while True:
        status, _, body = request(
            server, "POST", "/distributed/lease", {"worker_id": "probe"}
        )
        assert status == 200
        lease = json.loads(body)["lease"]
        if lease is not None:
            return lease
        assert time.monotonic() < deadline, "study never became leasable"
        time.sleep(0.02)


def push_headers(lease, data, worker_id="probe"):
    return {
        "Content-Type": "application/octet-stream",
        HEADER_SHARD_STUDY: lease["study_id"],
        HEADER_SHARD_INDEX: str(lease["shard_index"]),
        HEADER_SHARD_DIGEST: hashlib.sha256(data).hexdigest(),
        HEADER_WORKER_ID: worker_id,
        HEADER_LEASE_ID: lease["lease_id"],
    }


def evaluate_lease(lease):
    from repro.studies.executor import _run_shard

    return _run_shard(
        lease["spec"],
        lease["shard_index"],
        lease["start"],
        lease["stop"],
        lease["shard_size"],
        lease["vectorize"],
    ).tobytes()


def test_lease_push_round_trip_over_http(server):
    lease = submit_and_lease(server)
    assert lease["shard_size"] == SHARD_SIZE
    data = evaluate_lease(lease)
    status, _, body = request(
        server, "POST", "/distributed/push",
        raw_body=data, headers=push_headers(lease, data),
    )
    assert status == 200
    accepted = json.loads(body)
    assert accepted["accepted"] is True
    assert accepted["duplicate"] is False
    assert accepted["total"] == 3


def test_duplicate_push_accepted_idempotently(server):
    lease = submit_and_lease(server)
    data = evaluate_lease(lease)
    for expect_dup in (False, True):
        status, _, body = request(
            server, "POST", "/distributed/push",
            raw_body=data, headers=push_headers(lease, data),
        )
        assert status == 200
        assert json.loads(body)["duplicate"] is expect_dup


def test_corrupt_push_rejected_with_409(server):
    lease = submit_and_lease(server)
    data = evaluate_lease(lease)
    headers = push_headers(lease, data)  # digest of the good bytes
    corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
    status, _, body = request(
        server, "POST", "/distributed/push", raw_body=corrupted, headers=headers
    )
    assert status == 409
    error = json.loads(body)["error"]
    assert error["code"] == ERR_SHARD_REJECTED
    assert error["reason"] == "hash-mismatch"
    # The shard survived the bad push: the coordinator requeued it.
    assert server.coordinator.stats.rejected_pushes == 1


def test_push_to_unknown_study_is_404(server):
    status, _, body = request(
        server, "POST", "/distributed/push",
        raw_body=b"x",
        headers={
            HEADER_SHARD_STUDY: "f" * 64,
            HEADER_SHARD_INDEX: "0",
            HEADER_SHARD_DIGEST: hashlib.sha256(b"x").hexdigest(),
        },
    )
    assert status == 404
    assert json.loads(body)["error"]["code"] == ERR_UNKNOWN_STUDY


def test_cooperative_fail_requeues_over_http(server):
    lease = submit_and_lease(server)
    status, _, body = request(
        server, "POST", "/distributed/fail",
        {"lease_id": lease["lease_id"], "message": "probe gave up"},
    )
    assert status == 200
    assert json.loads(body)["ok"] is True
    assert server.coordinator.stats.worker_failures == 1
    # Cooperative failure is a requeue like any other: the /healthz gauge
    # must count it, not just lease-expiry requeues.
    _, _, body = request(server, "GET", "/healthz")
    dist = json.loads(body)["distributed"]
    assert dist["worker_failures"] == 1
    assert dist["requeues"] == 1


def test_plain_server_answers_distributed_routes_with_409(plain_server):
    for path, payload in (
        ("/distributed/lease", {"worker_id": "w"}),
        ("/distributed/fail", {"lease_id": "lease-1"}),
    ):
        status, _, body = request(plain_server, "POST", path, payload)
        assert status == 409
        assert json.loads(body)["error"]["code"] == ERR_NOT_DISTRIBUTED
    status, _, body = request(
        plain_server, "POST", "/distributed/push", raw_body=b"",
        headers={HEADER_SHARD_STUDY: "x", HEADER_SHARD_INDEX: "0"},
    )
    assert status == 409
    assert json.loads(body)["error"]["code"] == ERR_NOT_DISTRIBUTED


def test_transport_maps_rejection_and_unknown_study(server):
    transport = HttpCoordinatorTransport(server.url)
    lease = submit_and_lease(server)
    data = evaluate_lease(lease)
    with pytest.raises(PushRejected) as excinfo:
        transport.push(
            lease["study_id"], lease["shard_index"], data, "0" * 64,
            worker_id="probe", lease_id=lease["lease_id"],
        )
    assert excinfo.value.reason == "hash-mismatch"
    with pytest.raises(ValidationError, match="unknown-study"):
        transport.push("e" * 64, 0, data, hashlib.sha256(data).hexdigest())


# --------------------------------------------------------------------- #
# Observability
# --------------------------------------------------------------------- #
def test_healthz_reports_coordinator_state(server):
    status, _, body = request(server, "GET", "/healthz")
    assert status == 200
    health = json.loads(body)
    dist = health["distributed"]
    assert dist["workers"] == 0
    assert dist["outstanding_leases"] == 0
    assert dist["scheduler"] == "static"
    lease = submit_and_lease(server)
    assert lease is not None
    _, _, body = request(server, "GET", "/healthz")
    dist = json.loads(body)["distributed"]
    assert dist["workers"] == 1
    assert dist["outstanding_leases"] == 1
    assert dist["leases_granted"] == 1


def test_plain_healthz_reports_distributed_null(plain_server):
    _, _, body = request(plain_server, "GET", "/healthz")
    assert json.loads(body)["distributed"] is None
