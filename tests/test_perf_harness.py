"""The perf-regression harness must keep working (and its schema honest).

The fast tests here exercise the ``--check`` smoke mode on tiny workloads
and the schema validator; the full timing run (which writes nothing from
here) is marked ``perf`` and deselected by default — run it with
``pytest -m perf`` or directly via ``python -m benchmarks.perf_harness``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks import perf_harness  # noqa: E402


class TestCheckMode:
    def test_check_report_validates(self):
        report = perf_harness.run(check=True)
        perf_harness.validate_report(report)
        assert report["mode"] == "check"
        assert set(report["kernels"]) == set(perf_harness.KERNELS)

    def test_main_check_exits_zero_and_writes_nothing(self, tmp_path, capsys):
        marker = tmp_path / "perf.json"
        assert perf_harness.main(["--check", "--output", str(marker)]) == 0
        assert not marker.exists()
        assert "schema OK" in capsys.readouterr().out


class TestSchemaValidation:
    def _valid(self) -> dict:
        return perf_harness.run(check=True)

    def test_missing_top_level_key_rejected(self):
        report = self._valid()
        del report["kernels"]
        with pytest.raises(ValueError, match="kernels"):
            perf_harness.validate_report(report)

    def test_wrong_schema_version_rejected(self):
        report = self._valid()
        report["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            perf_harness.validate_report(report)

    def test_too_few_kernels_rejected(self):
        report = self._valid()
        report["kernels"] = {"only_one": report["kernels"]["sa_sample"]}
        with pytest.raises(ValueError, match=">= 5"):
            perf_harness.validate_report(report)

    def test_nonpositive_timing_rejected(self):
        report = self._valid()
        report["kernels"]["sa_sample"]["seconds"] = 0.0
        with pytest.raises(ValueError, match="positive"):
            perf_harness.validate_report(report)

    def test_missing_kernel_field_rejected(self):
        report = self._valid()
        del report["kernels"]["sweep"]["workload"]
        with pytest.raises(ValueError, match="workload"):
            perf_harness.validate_report(report)


class TestCommittedArtifact:
    def test_bench_perf_json_exists_and_validates(self):
        """The repo-root BENCH_PERF.json must stay in sync with the schema."""
        path = REPO_ROOT / "BENCH_PERF.json"
        assert path.exists(), "BENCH_PERF.json missing; run python -m benchmarks.perf_harness"
        report = json.loads(path.read_text())
        perf_harness.validate_report(report)
        assert report["mode"] == "full"

    @pytest.mark.perf
    def test_committed_sa_speedup_meets_target(self):
        """The SA kernel's recorded speedup over the seed implementation.

        Behind the perf marker because the artifact is refreshed from
        whatever machine ran the harness last — wall-clock thresholds do
        not belong in the default suite.
        """
        report = json.loads((REPO_ROOT / "BENCH_PERF.json").read_text())
        entry = report["kernels"]["sa_sample"]
        assert entry["seed_seconds"] is not None
        assert entry["speedup_vs_seed"] >= 3.0

    @pytest.mark.perf
    def test_committed_contended_study_meets_floor(self):
        """The contended-study kernel against its landing-time baseline.

        The baseline is this workload measured when the contention
        subsystem landed, so the ratio starts at ~1.0; the floor catches a
        DES-engine or contention-path regression while tolerating
        machine-to-machine timing noise.
        """
        report = json.loads((REPO_ROOT / "BENCH_PERF.json").read_text())
        entry = report["kernels"]["study_contended"]
        assert entry["seed_seconds"] is not None
        assert entry["speedup_vs_seed"] >= 0.7


@pytest.mark.perf
class TestFullRun:
    def test_full_run_validates_and_reports_speedups(self, tmp_path):
        out = tmp_path / "perf.json"
        assert perf_harness.main(["--repeats", "3", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        perf_harness.validate_report(report)
        assert report["mode"] == "full"
        assert report["kernels"]["sa_sample"]["speedup_vs_seed"] > 1.0
