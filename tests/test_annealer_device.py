"""Tests for the DWaveDevice facade (embedding + programming + sampling + timing)."""

from __future__ import annotations

import pytest

from repro.annealer import DWaveDevice, ExactSolver, geometric_schedule
from repro.annealer.sa import SimulatedAnnealingSampler
from repro.exceptions import SamplerError
from repro.hardware import ChimeraTopology, DW2_TIMING, FaultModel, random_faults
from repro.qubo import random_ising


@pytest.fixture(scope="module")
def device() -> DWaveDevice:
    return DWaveDevice(
        topology=ChimeraTopology(3, 3, 4),
        sampler=SimulatedAnnealingSampler(geometric_schedule(250)),
    )


class TestSolve:
    def test_end_to_end_finds_ground_state(self, device):
        m = random_ising(6, rng=0)
        result = device.solve_ising(m, num_reads=40, rng=0)
        assert result.best_energy == pytest.approx(
            ExactSolver().ground_energy(m), abs=1e-9
        )

    def test_logical_energies_use_logical_model(self, device):
        m = random_ising(5, rng=1)
        result = device.solve_ising(m, num_reads=10, rng=1)
        for row, e in zip(result.logical.samples, result.logical.energies):
            assert m.energy(row) == pytest.approx(e)

    def test_solve_qubo(self, device):
        from repro.qubo import brute_force_qubo, random_qubo

        q = random_qubo(5, rng=2)
        result = device.solve_qubo(q, num_reads=40, rng=2)
        _, e = brute_force_qubo(q)
        assert result.best_energy == pytest.approx(e[0], abs=1e-9)

    def test_precomputed_embedding_used(self, device):
        from repro.embedding import clique_embedding

        m = random_ising(4, rng=3)
        emb = clique_embedding(4, device.topology)
        result = device.solve_ising(m, num_reads=5, embedding=emb, rng=0)
        assert result.embedded.embedding == emb

    def test_num_reads_guard(self, device):
        with pytest.raises(SamplerError):
            device.solve_ising(random_ising(3, rng=0), num_reads=0)

    def test_chain_break_fraction_reported(self, device):
        m = random_ising(5, rng=4)
        result = device.solve_ising(m, num_reads=20, rng=4)
        assert 0.0 <= result.chain_break_fraction <= 1.0


class TestTiming:
    def test_programming_constant(self, device):
        m = random_ising(4, rng=5)
        result = device.solve_ising(m, num_reads=10, rng=0)
        assert result.timing.programming_us == pytest.approx(
            DW2_TIMING.processor_initialize_us
        )

    def test_sampling_scales_with_reads(self, device):
        m = random_ising(4, rng=5)
        from repro.embedding import clique_embedding

        emb = clique_embedding(4, device.topology)
        r10 = device.solve_ising(m, num_reads=10, embedding=emb, rng=0)
        r20 = device.solve_ising(m, num_reads=20, embedding=emb, rng=0)
        assert r20.timing.sampling_us == pytest.approx(2 * r10.timing.sampling_us)
        assert r10.timing.anneal_us == pytest.approx(10 * DW2_TIMING.anneal_us)

    def test_total_is_programming_plus_sampling(self, device):
        m = random_ising(4, rng=6)
        result = device.solve_ising(m, num_reads=7, rng=0)
        t = result.timing
        assert t.total_us == pytest.approx(t.programming_us + t.sampling_us)
        assert t.total_s == pytest.approx(t.total_us * 1e-6)


class TestFaults:
    def test_faulty_device_avoids_dead_qubits(self):
        topo = ChimeraTopology(3, 3, 4)
        faults = random_faults(topo, qubit_fault_rate=0.05, rng=1)
        device = DWaveDevice(
            topology=topo,
            faults=faults,
            sampler=SimulatedAnnealingSampler(geometric_schedule(100)),
        )
        assert device.num_working_qubits == topo.num_qubits - faults.num_dead_qubits
        m = random_ising(4, rng=7)
        result = device.solve_ising(m, num_reads=5, rng=0)
        dead = set(faults.dead_qubits)
        for chain in result.embedded.embedding.chains:
            assert not (set(chain) & dead)

    def test_explicit_fault_model(self):
        topo = ChimeraTopology(2, 2, 4)
        device = DWaveDevice(topology=topo, faults=FaultModel({0, 1}))
        assert device.num_working_qubits == topo.num_qubits - 2


class TestCharacterization:
    def test_success_probability_estimation(self, device):
        m = random_ising(6, rng=8)
        ground = ExactSolver().ground_energy(m)
        ps = device.estimate_success_probability(m, ground, num_reads=50, rng=0)
        assert 0.0 <= ps <= 1.0
        assert ps > 0.1  # SA with 250 sweeps solves n=6 most of the time
