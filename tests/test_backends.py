"""Backend registry tests: lookup, registration, capabilities, parity.

The registry (`repro.backends`) is the single dispatch surface for the
three model realizations; these tests pin its error paths (unknown names,
registration collisions, capability violations), its extension contract
(register a custom backend, sweep it in a study, tear it down), and the
acceptance property of the multi-backend study engine: one spec sweeping
``closed_form``, ``aspen``, and ``des`` side by side with byte-identical
artifacts across worker counts and cold-vs-cache-served runs.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import backends
from repro.backends import (
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    full_point,
)
from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec, StudyCache, run_study

ALL_BACKENDS = ("aspen", "closed_form", "des")


class TestRegistryLookup:
    def test_builtins_are_registered(self):
        assert set(ALL_BACKENDS) <= set(backends.available_backends())

    def test_get_returns_cached_instance(self):
        assert backends.get("closed_form") is backends.get("closed_form")
        assert isinstance(backends.get("des"), PerformanceBackend)

    def test_unknown_name_rejected_with_known_names(self):
        with pytest.raises(ValidationError, match="unknown backend 'warp'"):
            backends.get("warp")
        with pytest.raises(ValidationError, match="closed_form"):
            backends.capabilities("warp")
        with pytest.raises(ValidationError, match="unknown backend"):
            backends.unregister("warp")

    def test_capabilities_without_instantiation(self):
        caps = backends.capabilities("aspen")
        assert caps.rtol == 1e-12
        assert "lps" in caps.supported_axes
        assert "clock_hz" not in caps.supported_axes
        des = backends.capabilities("des")
        assert des.rtol == 1e-9 and des.atol == 1e-10


def _dummy_backend_class(backend_name: str):
    class _Dummy(PerformanceBackend):
        name = backend_name
        capabilities = BackendCapabilities(
            supported_axes=frozenset({"lps", "accuracy", "success"}),
            rtol=1.0,
            atol=1.0,
            description="constant-output test backend",
        )

        def evaluate(self, point):
            return BackendTimings(
                backend=self.name,
                lps=int(point["lps"]),
                accuracy=float(point["accuracy"]),
                success=float(point["success"]),
                stage1_s=1.0,
                stage2_s=2.0,
                stage3_s=3.0,
                repetitions=7,
            )

    return _Dummy


class TestRegistration:
    def test_collision_rejected_and_replace_allowed(self):
        backends.register(_dummy_backend_class("dummy_collide"))
        try:
            with pytest.raises(ValidationError, match="already registered"):
                backends.register(_dummy_backend_class("dummy_collide"))
            # replace=True is the explicit override path.
            backends.register(_dummy_backend_class("dummy_collide"), replace=True)
        finally:
            backends.unregister("dummy_collide")
        assert "dummy_collide" not in backends.available_backends()

    def test_bad_names_rejected(self):
        with pytest.raises(ValidationError, match="non-empty string"):
            backends.register(type("NoName", (PerformanceBackend,), {}))
        with pytest.raises(ValidationError, match="must match"):
            backends.register(_dummy_backend_class("Bad Name!"))
        with pytest.raises(ValidationError, match="at most 24"):
            backends.register(_dummy_backend_class("a" * 25))

    def test_missing_capabilities_rejected(self):
        cls = _dummy_backend_class("dummy_nocaps")
        cls.capabilities = None
        with pytest.raises(ValidationError, match="BackendCapabilities"):
            backends.register(cls)

    def test_registered_backend_sweeps_in_a_study(self):
        backends.register(_dummy_backend_class("dummy_study"))
        try:
            spec = ScenarioSpec(
                axes={"backend": ["closed_form", "dummy_study"], "lps": [1, 2]},
                name="custom",
            )
            results = run_study(spec)
            rows = results.backend_rows("dummy_study")
            assert np.all(results.column("stage1_s")[rows] == 1.0)
            assert np.all(results.column("total_s")[rows] == 6.0)
            assert np.all(results.column("repetitions")[rows] == 7)
            assert np.all(results.column("dominant_stage")[rows] == "stage3")
        finally:
            backends.unregister("dummy_study")
        # Specs naming the torn-down backend fail validation again.
        with pytest.raises(ValidationError, match="unknown backend"):
            ScenarioSpec(axes={"backend": ["dummy_study"]})


class TestCapabilityEnforcement:
    def test_spec_rejects_unsupported_axis_scan(self):
        with pytest.raises(ValidationError, match="does not support axis 'clock_hz'"):
            ScenarioSpec(axes={"backend": ["aspen"], "clock_hz": [1e9, 2e9]})
        with pytest.raises(ValidationError, match="embedding_mode"):
            ScenarioSpec(
                axes={"backend": ["aspen"], "embedding_mode": ["offline"]}
            )

    def test_spec_accepts_supported_scan_and_explicit_defaults(self):
        spec = ScenarioSpec(
            axes={
                "backend": ["aspen"],
                "lps": [1, 10],
                "accuracy": [0.9, 0.99],
                "embedding_mode": ["online"],  # the default, spelled out
            }
        )
        assert spec.num_points == 4

    def test_backend_evaluate_rejects_offaxis_point(self):
        point = full_point(lps=5, embedding_mode="offline")
        with pytest.raises(ValidationError, match="not supported"):
            backends.get("aspen").evaluate(point)

    def test_full_point_rejects_unknown_parameters(self):
        with pytest.raises(ValidationError, match="unknown operating-point"):
            full_point(qubits=3)


FIG9_GRID = [(lps, acc) for lps in (1, 5, 20, 50, 100) for acc in (0.9, 0.99)]


@pytest.mark.parametrize("name", [n for n in ALL_BACKENDS if n != "closed_form"])
class TestRegistryParity:
    """All registered backends agree within their declared tolerances."""

    def test_fig9_grid_within_declared_tolerance(self, name):
        backend = backends.get(name)
        reference = backends.get("closed_form")
        caps = backends.capabilities(name)
        for lps, accuracy in FIG9_GRID:
            point = full_point(lps=lps, accuracy=accuracy)
            t = backend.evaluate(point)
            r = reference.evaluate(point)
            for field in ("stage1_s", "stage2_s", "stage3_s"):
                assert getattr(t, field) == pytest.approx(
                    getattr(r, field), rel=caps.rtol, abs=caps.atol
                ), (name, field, lps, accuracy)
            assert t.total_seconds == pytest.approx(
                r.total_seconds, rel=caps.rtol, abs=caps.atol
            )
            assert t.repetitions == r.repetitions

    def test_sweep_is_bit_identical_to_evaluate_loop(self, name):
        backend = backends.get(name)
        config = full_point(accuracy=0.99, success=0.7)
        lps_run = [0, 1, 5, 20, 50]
        cols = backend.sweep(config, lps_run)
        loop = PerformanceBackend.sweep(backend, config, lps_run)
        for field in (
            "stage1_s",
            "stage2_s",
            "stage3_s",
            "total_s",
            "quantum_fraction",
            "dominant_stage",
            "repetitions",
        ):
            assert np.array_equal(
                getattr(cols, field), getattr(loop, field)
            ), (name, field)


class TestPaperModelMemoization:
    def test_load_paper_models_is_shared(self):
        from repro.aspen import load_paper_models

        assert load_paper_models() is load_paper_models()

    def test_aspen_backends_share_one_registry(self):
        from repro.core import AspenStageModels

        a, b = AspenStageModels(), AspenStageModels()
        assert a._registry is b._registry


class TestMultiBackendAcceptance:
    """The PR's acceptance criterion, end to end."""

    @pytest.fixture(scope="class")
    def spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            axes={
                "backend": ["closed_form", "aspen", "des"],
                "lps": [1, 5, 20],
                "accuracy": [0.9, 0.99],
            },
            name="acceptance",
            mc_trials=8,
            seed=5,
        )

    @pytest.fixture(scope="class")
    def reference_json(self, spec) -> str:
        return run_study(spec, workers=1, shard_size=4).to_json()

    def test_per_backend_columns_in_artifact(self, spec, reference_json):
        payload = json.loads(reference_json)
        assert payload["schema_version"] == 4
        column = payload["columns"]["backend"]
        assert column == (
            ["closed_form"] * 6 + ["aspen"] * 6 + ["des"] * 6
        )

    def test_byte_identical_across_worker_counts(self, spec, reference_json):
        assert run_study(spec, workers=2, shard_size=4).to_json() == reference_json

    def test_byte_identical_scalar_loop(self, spec, reference_json):
        assert (
            run_study(spec, workers=1, shard_size=4, vectorize=False).to_json()
            == reference_json
        )

    def test_byte_identical_cold_vs_cache_served(self, spec, reference_json, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        cold = run_study(spec, shard_size=4, cache=cache)
        assert cold.to_json() == reference_json
        assert cache.stats() == {"hits": 0, "misses": 5, "requests": 5}
        warm = run_study(spec, shard_size=4, cache=cache)
        assert warm.to_json() == reference_json
        assert cache.hits == 5

    def test_backends_within_declared_tolerances(self, spec, reference_json):
        from repro.studies import StudyResults

        results = StudyResults.from_dict(json.loads(reference_json))
        assert results.backends_within_tolerance() == {"aspen": True, "des": True}

    def test_backend_rows_partition_the_table(self, spec, reference_json):
        from repro.studies import StudyResults

        results = StudyResults.from_dict(json.loads(reference_json))
        slices = [results.backend_rows(n) for n in spec.backend_values]
        assert [s.start for s in slices] == [0, 6, 12]
        assert [s.stop for s in slices] == [6, 12, 18]
        with pytest.raises(ValidationError, match="not in this study"):
            results.backend_rows("warp")
