"""Property-based / randomized invariants of the QUBO-Ising problem layer.

The frozen goldens (``tests/data/golden_kernels.json``) pin exact outputs
on fixed inputs; this suite complements them with *generative* coverage —
hypothesis strategies and seeded random sweeps asserting the algebraic
invariants the paper's Eqs. (2)-(5) rest on, whatever the coefficients:

* the Qubo <-> Ising round trip is the identity;
* batched ``energies`` agrees with an independent dense quadratic form and
  with the brute-force ground truth on enumerable sizes;
* energies are invariant under spin relabeling (graph isomorphism);
* ``negated`` / ``scaled`` follow the affine algebra of the Hamiltonian.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qubo import (
    IsingModel,
    Qubo,
    brute_force_ising,
    ising_to_qubo,
    qubo_to_ising,
    random_ising,
    random_qubo,
)

settings.register_profile("repro-properties", deadline=None, max_examples=40)
settings.load_profile("repro-properties")


# --------------------------------------------------------------------- #
# Strategies and reference implementations
# --------------------------------------------------------------------- #
# Coefficients bounded away from the subnormal regime: the round-trip
# exactness claims rest on halving/quartering being exact exponent shifts,
# which fails only when the result underflows (hypothesis found 5e-324).
_coeff = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-3, max_value=8.0, allow_nan=False, width=64),
    st.floats(min_value=-8.0, max_value=-1e-3, allow_nan=False, width=64),
)


@st.composite
def ising_models(draw, max_spins: int = 8):
    """A small random IsingModel with bounded, exactly-representable-ish coeffs."""
    n = draw(st.integers(min_value=1, max_value=max_spins))
    h = draw(st.lists(_coeff, min_size=n, max_size=n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))) if pairs else []
    J = {pair: draw(_coeff) for pair in chosen}
    offset = draw(_coeff)
    return IsingModel(h, J, offset)


@st.composite
def qubos(draw, max_vars: int = 8):
    n = draw(st.integers(min_value=1, max_value=max_vars))
    linear = draw(st.lists(_coeff, min_size=n, max_size=n))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))) if pairs else []
    quadratic = {pair: draw(_coeff) for pair in chosen}
    offset = draw(_coeff)
    return Qubo(linear, quadratic, offset)


def _all_spins(n: int) -> np.ndarray:
    """All 2^n spin configurations as a (2^n, n) array of {-1, +1}."""
    idx = np.arange(1 << n)[:, None]
    return (((idx >> np.arange(n)) & 1) * 2 - 1).astype(np.float64)


def _dense_energy(model: IsingModel, S: np.ndarray) -> np.ndarray:
    """Independent reference: dense quadratic form, different operation order."""
    M = model.to_dense_coupling()
    return S @ model.h + 0.5 * np.einsum("ki,ij,kj->k", S, M, S) + model.offset


# --------------------------------------------------------------------- #
# Round-trip exactness (Eqs. 4-5)
# --------------------------------------------------------------------- #
class TestRoundTrip:
    @given(q=qubos())
    def test_qubo_ising_qubo_is_identity(self, q):
        back = ising_to_qubo(qubo_to_ising(q))
        assert back.num_variables == q.num_variables
        assert np.allclose(back.linear, q.linear, rtol=0, atol=1e-12)
        r0, c0, v0 = q.quadratic_arrays()
        r1, c1, v1 = back.quadratic_arrays()
        assert np.array_equal(r0, r1) and np.array_equal(c0, c1)
        # Halving and re-doubling is exact in binary floating point.
        assert np.array_equal(v0, v1)
        assert back.offset == pytest.approx(q.offset, abs=1e-12)

    @given(m=ising_models())
    def test_ising_qubo_ising_is_identity(self, m):
        back = qubo_to_ising(ising_to_qubo(m))
        assert np.allclose(back.h, m.h, rtol=0, atol=1e-12)
        assert np.array_equal(back.coupling_arrays()[2], m.coupling_arrays()[2])
        assert back.offset == pytest.approx(m.offset, abs=1e-12)

    @given(q=qubos(max_vars=6))
    def test_energies_preserved_configuration_by_configuration(self, q):
        m = qubo_to_ising(q)
        n = q.num_variables
        S = _all_spins(n)
        B = (S + 1.0) / 2.0
        assert np.allclose(q.energies(B), m.energies(S), rtol=0, atol=1e-9)


# --------------------------------------------------------------------- #
# Energies vs ground truth
# --------------------------------------------------------------------- #
class TestEnergies:
    @given(m=ising_models(max_spins=7))
    def test_batched_energies_match_dense_reference(self, m):
        S = _all_spins(m.num_spins)
        assert np.allclose(m.energies(S), _dense_energy(m, S), rtol=1e-12, atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_brute_force_finds_the_enumerated_minimum(self, seed):
        m = random_ising(2 + seed, density=0.7, rng=seed)
        S = _all_spins(m.num_spins)
        energies = m.energies(S)
        states, best = brute_force_ising(m, num_best=1)
        assert best[0] == pytest.approx(float(np.min(energies)), rel=1e-12, abs=1e-12)
        assert m.energy(states[0]) == pytest.approx(best[0], rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sweep_energy_matches_polynomial(self, seed):
        """Seeded sweep: energies == the literal Eq.-2 polynomial, term by term."""
        rng = np.random.default_rng(seed)
        m = random_ising(12, density=0.5, rng=seed)
        S = (rng.integers(0, 2, size=(64, 12)) * 2 - 1).astype(np.float64)
        expected = np.full(64, m.offset)
        for k in range(64):
            expected[k] += float(np.dot(m.h, S[k]))
            for i, j, v in m.iter_couplings():
                expected[k] += v * S[k, i] * S[k, j]
        assert np.allclose(m.energies(S), expected, rtol=1e-12, atol=1e-10)


# --------------------------------------------------------------------- #
# Symmetry and algebra
# --------------------------------------------------------------------- #
class TestSymmetries:
    @given(m=ising_models(), data=st.data())
    def test_energy_invariant_under_spin_relabeling(self, m, data):
        n = m.num_spins
        perm = data.draw(st.permutations(range(n)))
        relabeled = m.relabeled({i: perm[i] for i in range(n)})
        S = _all_spins(min(n, 6)) if n <= 6 else _all_spins(6)
        # Extend to n columns deterministically for larger models.
        reps = -(-n // S.shape[1])
        S = np.tile(S, (1, reps))[:, :n]
        permuted = np.empty_like(S)
        permuted[:, perm] = S
        assert np.allclose(relabeled.energies(permuted), m.energies(S), rtol=0, atol=1e-9)

    @given(m=ising_models())
    def test_negated_is_an_energy_reflection_about_the_offset(self, m):
        """negated flips (h, J) but keeps offset: E' = 2*offset - E."""
        S = _all_spins(min(m.num_spins, 6))[:, : m.num_spins]
        S = np.tile(S, (1, -(-m.num_spins // S.shape[1])))[:, : m.num_spins]
        neg = m.negated()
        assert np.allclose(
            neg.energies(S), 2.0 * m.offset - m.energies(S), rtol=0, atol=1e-9
        )
        assert neg.negated() == m

    @given(m=ising_models(), factor=st.floats(min_value=-4.0, max_value=4.0, allow_nan=False))
    def test_scaled_scales_every_energy(self, m, factor):
        S = _all_spins(min(m.num_spins, 6))
        S = np.tile(S, (1, -(-m.num_spins // S.shape[1])))[:, : m.num_spins]
        scaled = m.scaled(factor)
        assert np.allclose(scaled.energies(S), factor * m.energies(S), rtol=1e-12, atol=1e-9)

    @given(m=ising_models())
    def test_scaled_identity_and_composition(self, m):
        assert m.scaled(1.0) == m
        assert m.scaled(2.0).scaled(0.5) == m  # powers of two are exact

    def test_ground_state_order_invariant_under_positive_scaling(self):
        m = random_ising(10, density=0.6, rng=42)
        states, energies = brute_force_ising(m, num_best=4)
        states2, energies2 = brute_force_ising(m.scaled(2.0), num_best=4)
        assert np.array_equal(states, states2)
        assert np.allclose(energies2, 2.0 * np.asarray(energies), rtol=1e-12)
