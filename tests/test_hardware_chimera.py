"""Tests for the Chimera topology (paper Fig. 3 and the Fig.-6 constants)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import HardwareError
from repro.hardware import (
    DW2_VESUVIUS,
    DW2X,
    ChimeraTopology,
    chimera_edge_count,
    chimera_node_count,
)


class TestPaperConstants:
    def test_vesuvius_512(self):
        """Fig. 3: 512 qubits, an 8-by-8 lattice of unit cells."""
        assert DW2_VESUVIUS.num_qubits == 512

    def test_dw2x_1152(self):
        """Fig. 3: the most recent processor supports 12x12 and 1152 qubits."""
        assert DW2X.num_qubits == 1152

    def test_fig6_ng_formula(self):
        """NG = 8*M*N for L = 4."""
        for m, n in [(8, 8), (12, 12), (3, 5)]:
            assert chimera_node_count(m, n, 4) == 8 * m * n

    def test_fig6_eg_formula(self):
        """EG = 4*(2MN - M - N) + 16*M*N for L = 4."""
        for m, n in [(8, 8), (12, 12), (2, 7)]:
            assert chimera_edge_count(m, n, 4) == 4 * (2 * m * n - m - n) + 16 * m * n

    def test_dw2x_edge_count(self):
        assert DW2X.num_couplers == 3360

    def test_max_degree_six(self):
        """The Chimera layout restricts each qubit to at most 6 neighbors."""
        g = DW2_VESUVIUS.graph()
        degrees = [d for _, d in g.degree()]
        assert max(degrees) == 6
        assert min(degrees) == 5  # edge qubits have 5 neighbors


class TestGraphStructure:
    def test_graph_counts_match_formulas(self, small_chimera):
        g = small_chimera.graph()
        assert g.number_of_nodes() == small_chimera.num_qubits
        assert g.number_of_edges() == small_chimera.num_couplers

    def test_connected(self, small_chimera):
        assert nx.is_connected(small_chimera.graph())

    def test_bipartite(self):
        """Chimera graphs are bipartite (parts by u + i + j parity)."""
        assert nx.is_bipartite(ChimeraTopology(3, 4, 4).graph())

    def test_cell_is_complete_bipartite(self, cell):
        g = cell.graph()
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 16
        vertical = [cell.coord_to_linear((0, 0, 0, k)) for k in range(4)]
        horizontal = [cell.coord_to_linear((0, 0, 1, k)) for k in range(4)]
        for v in vertical:
            for h in horizontal:
                assert g.has_edge(v, h)
        for a in vertical:
            for b in vertical:
                if a != b:
                    assert not g.has_edge(a, b)

    def test_intercell_couplers(self):
        topo = ChimeraTopology(2, 2, 4)
        g = topo.graph()
        # Vertical coupler: same column, adjacent rows, u = 0, same k.
        assert g.has_edge(
            topo.coord_to_linear((0, 0, 0, 2)), topo.coord_to_linear((1, 0, 0, 2))
        )
        # Horizontal coupler: same row, adjacent columns, u = 1, same k.
        assert g.has_edge(
            topo.coord_to_linear((0, 0, 1, 3)), topo.coord_to_linear((0, 1, 1, 3))
        )
        # No diagonal cell coupling.
        assert not g.has_edge(
            topo.coord_to_linear((0, 0, 0, 0)), topo.coord_to_linear((1, 1, 0, 0))
        )

    def test_iter_edges_unique_and_ordered(self, small_chimera):
        edges = list(small_chimera.iter_edges())
        assert len(edges) == len(set(edges)) == small_chimera.num_couplers
        assert all(p < q for p, q in edges)

    def test_cell_qubits(self, small_chimera):
        qs = small_chimera.cell_qubits(1, 2)
        assert len(qs) == 8
        for q in qs:
            i, j, _, _ = small_chimera.linear_to_coord(q)
            assert (i, j) == (1, 2)

    def test_adjacency_arrays_consistent(self, cell):
        indptr, neighbors = cell.adjacency_arrays()
        g = cell.graph()
        for v in range(cell.num_qubits):
            assert sorted(g.neighbors(v)) == neighbors[indptr[v] : indptr[v + 1]].tolist()


class TestIndexing:
    def test_known_coordinates(self):
        topo = ChimeraTopology(2, 3, 4)
        assert topo.coord_to_linear((0, 0, 0, 0)) == 0
        assert topo.coord_to_linear((0, 0, 1, 0)) == 4
        assert topo.coord_to_linear((0, 1, 0, 0)) == 8
        assert topo.coord_to_linear((1, 0, 0, 0)) == 24

    def test_bad_coordinates_rejected(self):
        topo = ChimeraTopology(2, 2, 4)
        for coord in [(2, 0, 0, 0), (0, 2, 0, 0), (0, 0, 2, 0), (0, 0, 0, 4), (-1, 0, 0, 0)]:
            with pytest.raises(HardwareError):
                topo.coord_to_linear(coord)

    def test_bad_linear_rejected(self):
        topo = ChimeraTopology(2, 2, 4)
        for q in (-1, topo.num_qubits):
            with pytest.raises(HardwareError):
                topo.linear_to_coord(q)

    def test_bad_dimensions_rejected(self):
        with pytest.raises(HardwareError):
            ChimeraTopology(0, 1, 4)


@settings(max_examples=80, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=6),
    n=st.integers(min_value=1, max_value=6),
    l=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_property_coordinate_roundtrip(m, n, l, data):
    topo = ChimeraTopology(m, n, l)
    q = data.draw(st.integers(min_value=0, max_value=topo.num_qubits - 1))
    assert topo.coord_to_linear(topo.linear_to_coord(q)) == q


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=1, max_value=4),
    l=st.integers(min_value=1, max_value=4),
)
def test_property_graph_matches_closed_forms(m, n, l):
    topo = ChimeraTopology(m, n, l)
    g = topo.graph()
    assert g.number_of_nodes() == chimera_node_count(m, n, l)
    assert g.number_of_edges() == chimera_edge_count(m, n, l)
    assert max((d for _, d in g.degree()), default=0) <= l + 2
