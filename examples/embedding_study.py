#!/usr/bin/env python
"""Compare the library's three embedding strategies on one problem family.

The paper's Stage-1 bottleneck is the minor embedding; this example shows
the trade-offs among the available embedders:

* the exact unit-chain (subgraph) search — minimal qubits, only works when
  the input is a subgraph of the hardware;
* the deterministic clique construction — instant, but pays the worst-case
  quadratic qubit cost regardless of input density;
* the CMR heuristic — input-adaptive, the algorithm the paper measures;
* CMR raced across processes — the parallel pre-processing strategy the
  paper's conclusion calls for.

Run:  python examples/embedding_study.py
"""

from __future__ import annotations

import time

import networkx as nx

from repro.core import format_seconds, format_table
from repro.embedding import (
    clique_embedding,
    clique_qubit_cost,
    find_embedding_cmr,
    find_embedding_parallel,
    find_subgraph_embedding,
    verify_embedding,
)
from repro.exceptions import EmbeddingError
from repro.hardware import ChimeraTopology


def main() -> None:
    topo = ChimeraTopology(8, 8, 4)
    hardware = topo.graph()
    n = 16

    inputs = [
        ("cycle C16", nx.cycle_graph(n)),
        ("sparse G(16, 0.2)", nx.gnp_random_graph(n, 0.2, seed=1)),
        ("complete K16", nx.complete_graph(n)),
    ]

    rows = []
    for label, source in inputs:
        # Exact unit-chain search (only succeeds for subgraph-embeddable inputs).
        try:
            t0 = time.perf_counter()
            emb = find_subgraph_embedding(source, hardware)
            sub = f"{emb.num_physical}q / {format_seconds(time.perf_counter() - t0)}"
            verify_embedding(emb, source, hardware)
        except EmbeddingError:
            sub = "n/a (not a subgraph)"

        # Deterministic clique construction (covers any n-vertex input).
        t0 = time.perf_counter()
        cl = clique_embedding(n, topo)
        verify_embedding(cl, nx.complete_graph(n), hardware)
        clique = f"{clique_qubit_cost(n)}q / {format_seconds(time.perf_counter() - t0)}"

        # CMR heuristic (input-adaptive).
        t0 = time.perf_counter()
        emb = find_embedding_cmr(source, hardware, rng=0)
        verify_embedding(emb, source, hardware)
        cmr = f"{emb.num_physical}q / {format_seconds(time.perf_counter() - t0)}"

        rows.append([label, source.number_of_edges(), sub, clique, cmr])

    print(format_table(
        ["input", "edges", "exact unit-chain", "clique construction", "CMR heuristic"],
        rows,
        title=f"Embedding strategies on C(8,8,4) ({topo.num_qubits} qubits), n = {n}",
    ))

    print("\nparallel CMR (the paper's Sec.-4 suggestion), dense instance:")
    source = nx.complete_graph(18)
    big = ChimeraTopology(12, 12, 4).graph()
    t0 = time.perf_counter()
    find_embedding_cmr(source, big, rng=5)
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    emb, diag = find_embedding_parallel(
        source, big, num_workers=8, rng=5, return_diagnostics=True
    )
    t_par = time.perf_counter() - t0
    verify_embedding(emb, source, big)
    print(f"  serial : {format_seconds(t_serial)}")
    print(f"  8 procs: {format_seconds(t_par)} "
          f"({diag.tries_launched} tries launched in {diag.waves} wave(s))")


if __name__ == "__main__":
    main()
