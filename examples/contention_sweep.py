#!/usr/bin/env python
"""Sweep a contended multi-tenant workload over the DES backend.

Runs one study over ``queue_policy x sessions x arrival_rate`` — N
concurrent closed sessions plus open Poisson traffic contending for the
annealer — prints the per-policy latency/wait/utilization table, and
cross-checks one open-traffic operating point against the analytic
M/M/1 prediction within the declared envelope.

Run:  python examples/contention_sweep.py
"""

from __future__ import annotations

from repro._rng import spawn_stream
from repro.contention import (
    ContentionWorkload,
    get_analytic_model,
    simulate_contention,
)
from repro.contention.simulate import CONTENTION_DOMAIN
from repro.core import format_table
from repro.runtime import RequestProfile
from repro.studies import ScenarioSpec, contention_summary, run_study


def main() -> None:
    spec = ScenarioSpec(
        name="contention-sweep",
        axes={
            "backend": ["des"],
            "queue_policy": ["fifo", "priority", "round-robin"],
            "sessions": [2, 6],
            "arrival_rate": [0.5],
            "lps": [20],
        },
        seed=7,
    )
    print(f"contended study: {spec.num_points} points "
          "(3 policies x 2 populations x 1 rate, LPS = 20)\n")
    results = run_study(spec, shard_size=3)
    print(contention_summary(results))

    # Heavier closed population -> longer waits, for every policy.
    summary = results.contention_summary()
    mask = results.contention_rows() & (results.column("sessions") == 6)
    assert results.column("queue_wait_s")[mask].mean() > 0.0
    rows = [
        [name, f"{stats['queue_wait_s'] * 1e3:.1f}",
         f"{stats['utilization']:.1%}"]
        for name, stats in summary.items()
    ]
    print()
    print(format_table(["policy", "mean wait [ms]", "utilization"], rows,
                       title="policy comparison"))

    # One pure-open operating point against queueing theory.
    service_s, rho = 0.02, 0.6
    model = get_analytic_model("mm1")
    workload = ContentionWorkload(
        sessions=0, arrival_rate=rho / service_s,
        open_requests=4000, service="exponential",
    )
    metrics = simulate_contention(
        (RequestProfile(0.0, 0.0, 0.0, service_s, 0.0),),
        workload, spawn_stream(spec.seed, CONTENTION_DOMAIN, 0),
    )
    prediction = model.predict(workload.arrival_rate, service_s)
    assert model.wait_within_envelope(metrics.mean_queue_wait_s, prediction)
    assert model.utilization_within_envelope(metrics.utilization, prediction)
    print(
        f"\nM/M/1 cross-check at rho={rho}: simulated wait "
        f"{metrics.mean_queue_wait_s * 1e3:.2f} ms vs analytic "
        f"{prediction.mean_wait_s * 1e3:.2f} ms, utilization "
        f"{metrics.utilization:.1%} vs {prediction.utilization:.1%} "
        "(inside the declared envelope)"
    )


if __name__ == "__main__":
    main()
