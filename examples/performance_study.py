#!/usr/bin/env python
"""Reproduce the paper's Fig. 9 analysis end to end.

Generates the three timing series (stage 1 vs problem size, stage 2 vs
accuracy, stage 3 vs problem size), the stage-dominance table, and the
bottleneck analysis — the quantitative content of Secs. 3.3 and 4 — from
the ASPEN-evaluated models, cross-checked against the closed forms.

Run:  python examples/performance_study.py
"""

from __future__ import annotations

from repro.core import (
    AspenStageModels,
    SplitExecutionModel,
    format_seconds,
    format_table,
    loglog_slope,
    stage_dominance_table,
)


def main() -> None:
    aspen = AspenStageModels()
    model = SplitExecutionModel()

    # -- Fig. 9(a): stage-1 time vs problem size ------------------------ #
    sizes = [1, 2, 5, 10, 20, 30, 50, 75, 100]
    rows = [[n, format_seconds(aspen.stage1_seconds(n))] for n in sizes]
    print(format_table(["n = LPS", "stage 1 time"], rows,
                       title="Fig. 9(a): Stage-1 (ASPEN model, worst-case embedding)"))
    big = [n for n in sizes if n >= 30]
    slope = loglog_slope(big, [aspen.stage1_seconds(n) for n in big])
    print(f"asymptotic log-log slope: {slope:.2f} (cubic embedding term)\n")

    # -- Fig. 9(b): stage-2 time vs accuracy ---------------------------- #
    accuracies = [50.0, 90.0, 99.0, 99.9, 99.99]
    rows = [
        [f"{a}%"] + [f"{aspen.stage2_seconds(a, ps) * 1e6:.0f} us" for ps in (0.61, 0.7, 0.9)]
        for a in accuracies
    ]
    print(format_table(["accuracy", "ps=0.61", "ps=0.7", "ps=0.9"], rows,
                       title="Fig. 9(b): Stage-2 time vs desired accuracy"))
    print("note: nearly flat, and nearly identical for all ps > 0.6 (paper Sec. 3.3)\n")

    # -- Fig. 9(c): stage-3 time vs problem size ------------------------ #
    rows = [[n, f"{aspen.stage3_seconds(n) * 1e9:.1f} ns"] for n in sizes]
    print(format_table(["n = LPS", "stage 3 time"], rows,
                       title="Fig. 9(c): Stage-3 readout sort"))
    print()

    # -- the dominance table and conclusions ---------------------------- #
    rows = []
    for r in stage_dominance_table(model, [10, 30, 50, 100]):
        rows.append(
            [
                r["lps"],
                format_seconds(float(r["stage1_s"])),
                format_seconds(float(r["stage2_s"])),
                format_seconds(float(r["stage3_s"])),
                f"{float(r['quantum_fraction']):.2e}",
            ]
        )
    print(format_table(
        ["LPS", "stage 1", "stage 2", "stage 3", "quantum fraction"],
        rows,
        title="Stage dominance (pa = 0.99, ps = 0.7)",
    ))

    speedup = model.required_embedding_speedup(100)
    print(f"\nconclusion: at n = 100 the classical translation must accelerate by "
          f"{speedup:.1e}x before the QPU becomes the bottleneck —")
    print("'the pre-processing overhead for split-execution must be reduced by "
          "many orders of magnitude in order to become processor limited' (Sec. 4)")

    offline = SplitExecutionModel(embedding_mode="offline")
    t_off = offline.time_to_solution(100)
    print(f"\noffline-embedding alternative (Sec. 3.3): total drops to "
          f"{format_seconds(t_off.total_seconds)}, now dominated by the constant "
          f"{format_seconds(t_off.stage1.processor_initialize)} programming cost")


if __name__ == "__main__":
    main()
