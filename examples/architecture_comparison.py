#!/usr/bin/env python
"""Compare the three QPU-integration architectures of the paper's Fig. 1.

Runs a closed multi-client workload through the discrete-event runtime on
each architecture — (a) asymmetric LAN-attached QPU, (b) shared in-host
QPU, (c) dedicated QPU per node — and prints contention metrics plus one
request's full Fig.-2 timeline.

Run:  python examples/architecture_comparison.py
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, format_table
from repro.runtime import Architecture, run_single_session, simulate_architecture


def main() -> None:
    model = SplitExecutionModel()
    profile = model.request_profile(30)

    print("workload: 6 clients x 3 back-to-back requests, LPS = 30\n")
    rows = []
    for arch in Architecture:
        r = simulate_architecture(
            arch, profile, num_clients=6, requests_per_client=3, rng=0
        )
        rows.append(
            [
                arch.value,
                f"{r.makespan:.2f}",
                f"{r.mean_latency:.2f}",
                f"{r.max_latency:.2f}",
                f"{r.mean_qpu_wait:.2f}",
                f"{r.throughput:.2f}",
            ]
        )
    print(format_table(
        ["architecture", "makespan [s]", "mean lat [s]", "max lat [s]",
         "QPU wait [s]", "req/s"],
        rows,
        title="Fig. 1 architecture comparison",
    ))

    print("\nnote: because stage 1 (classical embedding) dominates each request,")
    print("contention for the QPU is mild — the architectures differ far less than")
    print("they would if quantum execution were the bottleneck (paper Sec. 1, [24]).\n")

    latency, trace = run_single_session(
        model.request_profile(30, network_latency=200e-6)
    )
    print("one request on the asymmetric architecture (Fig. 2 sequence):")
    print(trace.to_table("ms"))
    print(f"\nend-to-end latency: {latency:.3f} s")


if __name__ == "__main__":
    main()
