#!/usr/bin/env python
"""A tour of the ASPEN performance-modeling language implementation.

Authors a small application model and a machine model from source text,
evaluates the application on two different sockets, inspects the report,
and then loads the paper's actual Fig. 5-8 artifacts and sweeps a
parameter — everything a performance engineer does with ASPEN, in one
script.

Run:  python examples/aspen_tour.py
"""

from __future__ import annotations

from repro.aspen import AspenEvaluator, ModelRegistry, load_paper_models
from repro.core import format_seconds, format_table

CUSTOM_SOURCE = """
// A toy two-socket machine: a slow scalar CPU and a wide vector engine.
machine Toy { [1] toybox nodes }
node toybox {
  [1] scalar_cpu sockets
  [1] vector_cpu sockets
}
socket scalar_cpu {
  [1] scalar_core cores
  dram memory
}
socket vector_cpu {
  [1] vector_core cores
  dram memory
}
core scalar_core {
  param hz = 1e9
  resource flops(number) [number / hz]
}
core vector_core {
  param hz = 1e9
  resource flops(number) [number / hz]
    with simd [ base / 16 ], fmad [ base / 2 ]
}
memory dram {
  param bw = 10e9
  resource loads(bytes) [bytes / bw]
  resource stores(bytes) [bytes / bw]
}

// A stencil-style kernel: N^2 points, 9 flops and 12 bytes each.
model Stencil {
  param N = 1024
  param points = N^2
  data GridA as Array(points, 4)
  kernel sweep {
    execute [1] {
      flops [9 * points] as simd, fmad
      loads [8 * points] from GridA
      stores [4 * points] to GridA
    }
  }
  kernel main { iterate [10] { sweep } }
}
"""


def main() -> None:
    # -- author, parse, evaluate ----------------------------------------- #
    registry = ModelRegistry()
    registry.load_text(CUSTOM_SOURCE)
    machine = registry.machine("Toy")
    app = registry.application("Stencil")

    evaluator = AspenEvaluator(machine)
    rows = []
    for socket in machine.socket_names():
        report = evaluator.evaluate(app, socket=socket, params={"N": 2048})
        rows.append(
            [
                socket,
                format_seconds(report.total_seconds),
                report.dominant_resource(),
            ]
        )
    print(format_table(
        ["socket", "10 sweeps (N=2048)", "dominant resource"],
        rows,
        title="Custom ASPEN model: stencil on two sockets",
    ))
    print("note: the vector socket turns the kernel memory-bound.\n")

    # -- inspect a report ------------------------------------------------- #
    report = evaluator.evaluate(app, socket="vector_cpu", params={"N": 2048})
    print("per-resource breakdown on vector_cpu:")
    for resource, seconds in sorted(report.per_resource().items()):
        print(f"  {resource:<8} {format_seconds(seconds)}")
    print()

    # -- the paper's artifacts -------------------------------------------- #
    paper = load_paper_models()
    simple_node = paper.machine("SimpleNode")
    ev = AspenEvaluator(simple_node)
    stage1 = paper.application("Stage1")

    rows = []
    for lps in (10, 30, 100):
        r = ev.evaluate(stage1, socket="intel_xeon_e5_2680", params={"LPS": lps})
        rows.append([lps, format_seconds(r.total_seconds), r.dominant_resource()])
    print(format_table(
        ["LPS", "Stage-1 time", "dominant resource"],
        rows,
        title="The paper's Fig. 6 listing, evaluated on the Fig. 5 machine",
    ))

    qpu = simple_node.socket("dwave_vesuvius_20")
    quops = qpu.find_resource("QuOps")
    seconds, _ = quops.time_seconds(1, [])
    print(f"\nQPU socket: 1 QuOp = {format_seconds(seconds)} "
          "(the 20 us annealing duration of Fig. 5)")


if __name__ == "__main__":
    main()
