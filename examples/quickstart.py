#!/usr/bin/env python
"""Quickstart: solve a small optimization problem on the simulated QPU.

This walks the full split-execution path of the paper's Fig. 2 in a dozen
lines: formulate MAX-CUT as a QUBO, hand it to the simulated D-Wave device
(which embeds, programs, anneals, and decodes), and compare the answer and
the wall-clock accounting against the exact solution and the paper's
performance models.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import networkx as nx

from repro.annealer import DWaveDevice
from repro.core import SplitExecutionModel, format_seconds
from repro.hardware import ChimeraTopology
from repro.qubo import brute_force_qubo, maxcut_qubo


def main() -> None:
    # 1. A workload: MAX-CUT on the Petersen graph (10 vertices, 15 edges).
    graph = nx.petersen_graph()
    qubo = maxcut_qubo(graph)
    print(f"problem: MAX-CUT on the Petersen graph "
          f"({graph.number_of_nodes()} vertices, {graph.number_of_edges()} edges)")

    # 2. A device: a small Chimera lattice is plenty for 10 logical spins.
    device = DWaveDevice(topology=ChimeraTopology(4, 4, 4))

    # 3. Solve: embed -> program -> anneal -> read out -> decode.
    result = device.solve_qubo(qubo, num_reads=100, rng=0)
    cut_value = -result.best_energy  # the QUBO encodes E(b) = -cut(b)

    # 4. Ground truth for a problem this small.
    _, exact = brute_force_qubo(qubo)
    print(f"device best cut : {cut_value:g}")
    print(f"exact max cut   : {-exact[0]:g}")
    print(f"embedding       : {result.embedded.embedding.num_physical} physical qubits, "
          f"max chain {result.embedded.embedding.max_chain_length}")
    print(f"chain breaks    : {result.chain_break_fraction:.1%}")

    # 5. The paper's subject — where did the (modeled) time go?
    t = result.timing
    print("\ndevice timing model (Figs. 5-7 constants):")
    print(f"  programming   : {format_seconds(t.programming_us * 1e-6)}")
    print(f"  sampling      : {format_seconds(t.sampling_us * 1e-6)} for 100 reads")
    print(f"  total         : {format_seconds(t.total_s)}")

    model = SplitExecutionModel()
    prediction = model.time_to_solution(lps=10, accuracy=0.99, success=0.7)
    print("\nfull split-execution prediction at LPS=10 (Fig. 9 models):")
    print(f"  stage 1 (classical pre-processing): {format_seconds(prediction.stage1_seconds)}")
    print(f"  stage 2 (quantum execution)       : {format_seconds(prediction.stage2_seconds)}")
    print(f"  stage 3 (post-processing)         : {format_seconds(prediction.stage3_seconds)}")
    print(f"  dominant stage                    : {prediction.dominant_stage}")


if __name__ == "__main__":
    main()
