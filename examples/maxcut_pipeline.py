#!/usr/bin/env python
"""Domain example: the full middleware pipeline on a larger MAX-CUT instance.

Unlike the quickstart, every middleware step is performed explicitly — the
translation chain the paper's Stage 1 models (QUBO -> logical Ising ->
minor embedding -> parameter setting -> precision-limited programming) and
the readout chain of Stages 2-3 (sampling, chain decoding, energy sort,
Eq.-6 repetition planning).

Run:  python examples/maxcut_pipeline.py
"""

from __future__ import annotations

import time

import networkx as nx

from repro.annealer import SampleSet, SimulatedAnnealingSampler, geometric_schedule
from repro.core import format_seconds, required_repetitions
from repro.embedding import (
    chain_break_fraction,
    embed_ising,
    find_embedding_cmr,
    verify_embedding,
)
from repro.hardware import DW2_PROPERTIES, DW2_TIMING, ChimeraTopology, program_ising, random_faults
from repro.qubo import maxcut_qubo, qubo_to_ising


def main() -> None:
    # -- the workload -------------------------------------------------- #
    graph = nx.gnp_random_graph(24, 0.25, seed=7)
    qubo = maxcut_qubo(graph)
    print(f"MAX-CUT on G(24, 0.25): {graph.number_of_edges()} edges")

    # -- Stage 1a: QUBO -> logical Ising (paper Eqs. 4-5) -------------- #
    logical = qubo_to_ising(qubo)
    print(f"logical Ising: {logical.num_spins} spins, "
          f"{logical.num_interactions} couplings")

    # -- Stage 1b: minor embedding into faulty hardware ---------------- #
    topology = ChimeraTopology(8, 8, 4)
    faults = random_faults(topology, qubit_fault_rate=0.02, rng=3)
    working = topology.working_graph(faults)
    print(f"hardware: C(8,8,4), {faults.num_dead_qubits} dead qubits "
          f"({faults.yield_fraction(topology):.1%} yield)")

    t0 = time.perf_counter()
    embedding = find_embedding_cmr(logical.graph(), working, rng=0)
    embed_time = time.perf_counter() - t0
    verify_embedding(embedding, logical.graph(), working)
    print(f"CMR embedding: {embedding.num_physical} qubits, max chain "
          f"{embedding.max_chain_length}, found in {format_seconds(embed_time)}")

    # -- Stage 1c: parameter setting + precision-limited programming --- #
    embedded = embed_ising(logical, embedding, working)
    programmed, report = program_ising(embedded.physical, DW2_PROPERTIES)
    print(f"programming: scale {report.scale:.3f}, max DAC error "
          f"h={report.max_h_error:.4f} J={report.max_j_error:.4f}")

    # -- Stage 2: statistical sampling ---------------------------------- #
    sampler = SimulatedAnnealingSampler(geometric_schedule(256))
    num_reads = 200
    physical = sampler.sample(programmed, num_reads=num_reads, rng=1)
    decoded = embedded.unembed(physical.samples)
    logical_set = SampleSet.from_samples(logical, decoded)
    cbf = chain_break_fraction(physical.samples, embedded.dense_chains())
    print(f"sampling: {num_reads} reads, chain-break fraction {cbf:.2%}")
    print(f"device-model time for the reads: "
          f"{format_seconds(DW2_TIMING.sample_cycle_s(num_reads))}")

    # -- Stage 3: sort, multiplicity, solution -------------------------- #
    agg = logical_set.aggregated()
    best_state, best_energy = agg.first
    print(f"best cut found: {-best_energy:g} "
          f"(seen {int(agg.num_occurrences[0])}x of {num_reads} reads)")

    # -- Eq. 6: how many reads did we actually need? -------------------- #
    ps = agg.ground_state_probability(best_energy)
    for pa in (0.9, 0.99, 0.999):
        s = required_repetitions(pa, max(ps, 1e-6))
        print(f"  empirical ps = {ps:.2f}: accuracy {pa} needs s = {s} reads (Eq. 6)")

    # -- the paper's observation ----------------------------------------- #
    quantum = DW2_TIMING.sample_cycle_s(required_repetitions(0.99, max(ps, 1e-6)))
    print(f"\nbottleneck check: embedding took {format_seconds(embed_time)} vs "
          f"{format_seconds(quantum)} of quantum execution -> "
          f"{embed_time / quantum:,.0f}x (classical translation dominates)")


if __name__ == "__main__":
    main()
